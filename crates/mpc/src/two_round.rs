//! Algorithm 2: the deterministic 2-round MPC coreset (Theorem 10).
//!
//! The difficulty with adversarially distributed data is that a machine
//! cannot know how many of the global `z` outliers it holds, and sending
//! `z` candidates per machine would blow up the coordinator.  The paper's
//! mechanism:
//!
//! * **Round 1** — every machine `M_i` computes `V_i[j] = radius of
//!   Greedy(P_i, k, 2^j−1)` for `j = 0..⌈log(z+1)⌉` and broadcasts the
//!   vector (`O(log z)` words) to all machines.
//! * **Round 2** — from the shared vectors every machine derives the same
//!   threshold `r̂ = min{r : Σ_ℓ (2^{min{j : V_ℓ[j] ≤ r}} − 1) ≤ 2z}`,
//!   which satisfies `r̂ ≤ 3·opt` (Lemma 8).  Machine `M_i` then runs
//!   `MBCConstruction(P_i, k, 2^ĵᵢ−1, ε)` with `ĵᵢ = min{j : V_i[j] ≤ r̂}`
//!   and ships the covering to the coordinator.  The budgets `2^ĵᵢ−1` sum
//!   to at most `2z` by choice of `r̂`, so the coordinator receives
//!   `O(m·k/ε^d + z)` points (Lemma 9), recompresses once more, and holds
//!   a `3ε`-coreset.

use kcz_coreset::compose::{composed_eps, union_coverings};
use kcz_coreset::mbc::mbc_construction_with;
use kcz_kcenter::charikar::{greedy_with, GreedyParams};
use kcz_metric::{unit_weighted, MetricSpace, SpaceUsage};

use crate::exec::{parallel_map, words_of_points, words_of_weighted, MpcCoreset, MpcRunStats};

/// Output of [`two_round`], with the algorithm's internal diagnostics.
#[derive(Debug, Clone)]
pub struct TwoRoundResult<P> {
    /// The coreset and resource accounting.
    pub output: MpcCoreset<P>,
    /// The global radius threshold `r̂` (Lemma 8: `r̂ ≤ 3·opt`).
    pub rhat: f64,
    /// Per-machine outlier budgets `2^ĵᵢ − 1`; their sum is ≤ 2z.
    pub budgets: Vec<u64>,
}

/// `⌈log₂(x)⌉` for `x ≥ 1`.
fn ceil_log2(x: u64) -> u32 {
    debug_assert!(x >= 1);
    64 - (x - 1).leading_zeros().min(64)
}

/// Number of vector entries: `⌈log(z+1)⌉ + 1` (Algorithm 2, line 1).
pub(crate) fn vector_len(z: u64) -> usize {
    if z == 0 {
        1
    } else {
        ceil_log2(z + 1) as usize + 1
    }
}

/// Runs Algorithm 2 on `partition[i] = P_i` (arbitrary, possibly
/// adversarial distribution).  Machine 0 doubles as the coordinator.
pub fn two_round<P, M>(
    metric: &M,
    partition: &[Vec<P>],
    k: usize,
    z: u64,
    eps: f64,
    params: &GreedyParams,
) -> TwoRoundResult<P>
where
    P: Clone + SpaceUsage + Send + Sync,
    M: MetricSpace<P>,
{
    assert!(!partition.is_empty(), "need at least one machine");
    assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
    let m = partition.len();
    let len = vector_len(z);

    // ---- Round 1: per-machine Greedy radii for outlier budgets 2^j − 1.
    let vectors: Vec<Vec<f64>> = parallel_map(partition.iter().collect(), |_, pts: &Vec<P>| {
        let weighted = unit_weighted(pts);
        (0..len)
            .map(|j| {
                let budget = (1u64 << j) - 1;
                greedy_with(metric, &weighted, k, budget, params).radius
            })
            .collect()
    });
    // Broadcast: every machine sends its vector to the other m−1 machines.
    let round1_words = (m as u64) * (m as u64 - 1) * len as u64;
    let mut comm_words = round1_words;

    // ---- Round 2 (computed once; every machine derives the same r̂).
    let mut candidates: Vec<f64> = vectors.iter().flatten().copied().collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN radii"));
    candidates.dedup();
    let excess = |r: f64| -> Option<u64> {
        let mut sum = 0u64;
        for v in &vectors {
            let j = v.iter().position(|&x| x <= r)?;
            sum = sum.saturating_add((1u64 << j) - 1);
        }
        Some(sum)
    };
    let rhat = candidates
        .iter()
        .copied()
        .find(|&r| excess(r).is_some_and(|s| s <= 2 * z))
        .expect("the maximum Greedy radius always satisfies the budget sum");

    let budgets: Vec<u64> = vectors
        .iter()
        .map(|v| {
            let j = v
                .iter()
                .position(|&x| x <= rhat)
                .expect("r̂ dominates some entry of every vector");
            (1u64 << j) - 1
        })
        .collect();

    // Local mini-ball coverings with the derived budgets.
    let inputs: Vec<(usize, &Vec<P>)> = partition.iter().enumerate().collect();
    let coverings = parallel_map(inputs, |_, (i, pts): (usize, &Vec<P>)| {
        let weighted = unit_weighted(pts);
        mbc_construction_with(metric, &weighted, k, budgets[i], eps, params).reps
    });

    // Storage accounting.  A worker's peak: its raw input, the m vectors
    // received after round 1, and its outgoing covering.
    let mut worker_peak = 0usize;
    for (i, pts) in partition.iter().enumerate() {
        let held = words_of_points(pts) + m * len + words_of_weighted(&coverings[i]);
        if i != 0 {
            worker_peak = worker_peak.max(held);
        }
    }
    for (i, c) in coverings.iter().enumerate() {
        if i != 0 {
            comm_words += words_of_weighted(c) as u64;
        }
    }

    // ---- Coordinator: union (Lemma 9) + recompression (Lemma 5).
    let received: usize = coverings.iter().map(|c| words_of_weighted(c)).sum();
    let union = union_coverings(coverings);
    let final_mbc = mbc_construction_with(metric, &union, k, z, eps, params);
    let coordinator_peak =
        words_of_points(&partition[0]) + m * len + received + words_of_weighted(&final_mbc.reps);

    let stats = MpcRunStats {
        rounds: 2,
        machines: m,
        worker_peak_words: worker_peak,
        coordinator_peak_words: coordinator_peak,
        comm_words,
        round_comm_words: vec![round1_words, comm_words - round1_words],
        coreset_size: final_mbc.reps.len(),
    };
    TwoRoundResult {
        output: MpcCoreset {
            coreset: final_mbc.reps,
            effective_eps: composed_eps(eps, eps),
            stats,
        },
        rhat,
        budgets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_coreset::validate::validate_coreset;
    use kcz_kcenter::exact_discrete;
    use kcz_metric::{total_weight, Weighted, L2};

    /// Three clusters + z outliers, all outliers packed onto machine 0
    /// (the adversarial distribution the algorithm is designed for).
    fn adversarial_instance(z: u64) -> (Vec<[f64; 2]>, Vec<Vec<[f64; 2]>>) {
        let mut all = vec![];
        let mut machines: Vec<Vec<[f64; 2]>> = vec![vec![]; 4];
        for i in 0..z {
            let p = [1e5 + (i as f64) * 1e4, -1e5];
            all.push(p);
            machines[0].push(p);
        }
        for i in 0..36u64 {
            let c = (i % 3) as f64 * 100.0;
            let p = [c + (i as f64 * 0.017).sin(), c + (i as f64 * 0.013).cos()];
            all.push(p);
            machines[(1 + i % 3) as usize].push(p);
        }
        (all, machines)
    }

    #[test]
    fn vector_len_matches_paper() {
        assert_eq!(vector_len(0), 1);
        assert_eq!(vector_len(1), 2);
        assert_eq!(vector_len(3), 3);
        assert_eq!(vector_len(4), 4);
        assert_eq!(vector_len(7), 4);
        assert_eq!(vector_len(8), 5);
    }

    #[test]
    fn budgets_sum_within_twice_z() {
        let z = 6;
        let (_, machines) = adversarial_instance(z);
        let res = two_round(&L2, &machines, 3, z, 0.5, &GreedyParams::default());
        let total: u64 = res.budgets.iter().sum();
        assert!(total <= 2 * z, "budget sum {total} > 2z = {}", 2 * z);
    }

    #[test]
    fn rhat_at_most_three_opt() {
        let z = 6;
        let (all, machines) = adversarial_instance(z);
        let res = two_round(&L2, &machines, 3, z, 0.5, &GreedyParams::default());
        let weighted: Vec<Weighted<[f64; 2]>> = all.iter().map(|p| Weighted::unit(*p)).collect();
        let opt = exact_discrete(&L2, &weighted, 3, z, &all).radius;
        assert!(
            res.rhat <= 3.0 * opt + 1e-9,
            "r̂ = {} > 3·opt = {}",
            res.rhat,
            3.0 * opt
        );
    }

    #[test]
    fn output_is_valid_coreset() {
        let z = 6;
        let (all, machines) = adversarial_instance(z);
        let eps = 0.4;
        let res = two_round(&L2, &machines, 3, z, eps, &GreedyParams::default());
        let weighted: Vec<Weighted<[f64; 2]>> = all.iter().map(|p| Weighted::unit(*p)).collect();
        assert_eq!(total_weight(&res.output.coreset), all.len() as u64);
        let report = validate_coreset(
            &L2,
            &weighted,
            &res.output.coreset,
            3,
            z,
            res.output.effective_eps,
        );
        assert!(report.condition1 && report.condition2, "{report:?}");
    }

    #[test]
    fn stats_are_populated() {
        let (_, machines) = adversarial_instance(4);
        let res = two_round(&L2, &machines, 3, 4, 0.5, &GreedyParams::default());
        let s = &res.output.stats;
        assert_eq!(s.rounds, 2);
        assert_eq!(s.machines, 4);
        assert!(s.worker_peak_words > 0);
        assert!(s.coordinator_peak_words >= s.coreset_size * 3);
        assert!(s.comm_words > 0);
        assert_eq!(s.coreset_size, res.output.coreset.len());
        // Per-round split: round 1 is the O(m² log z) broadcast, round 2
        // the coverings, and together they account for every word sent.
        assert_eq!(s.round_comm_words.len(), s.rounds);
        assert_eq!(s.round_comm_words.iter().sum::<u64>(), s.comm_words);
        assert_eq!(
            s.round_comm_words[0],
            4 * 3 * vector_len(4) as u64,
            "round 1 is exactly the m(m−1) vector broadcast"
        );
    }

    #[test]
    fn zero_outliers_degenerates_cleanly() {
        let machines = vec![vec![[0.0, 0.0], [0.1, 0.0]], vec![[50.0, 0.0], [50.1, 0.0]]];
        let res = two_round(&L2, &machines, 2, 0, 0.5, &GreedyParams::default());
        assert_eq!(res.budgets, vec![0, 0]);
        assert_eq!(total_weight(&res.output.coreset), 4);
    }

    #[test]
    fn single_machine_works() {
        let machines = vec![vec![[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]]];
        let res = two_round(&L2, &machines, 1, 1, 1.0, &GreedyParams::default());
        assert_eq!(res.output.stats.machines, 1);
        assert_eq!(total_weight(&res.output.coreset), 3);
    }

    #[test]
    fn empty_machines_tolerated() {
        let machines = vec![vec![], vec![[0.0, 0.0], [1.0, 1.0]], vec![]];
        let res = two_round(&L2, &machines, 1, 0, 0.5, &GreedyParams::default());
        assert_eq!(total_weight(&res.output.coreset), 2);
    }
}
