//! MPC (Massively Parallel Computing) simulation of the paper's
//! coreset algorithms (Sections 3 and 7).
//!
//! The MPC model: `m` machines, synchronous rounds, per-machine storage
//! that must stay sublinear in `n`.  One machine is the *coordinator* and
//! must end up holding the answer; the rest are *workers*.  The paper's
//! performance measures are (i) the number of rounds, (ii) the worker and
//! coordinator storage, and (iii) the size of the final coreset — all of
//! which the simulator in [`exec`] accounts exactly, while actually
//! executing each round's machine-local computation on the workspace's
//! shared persistent worker pool (`kcz_engine::runtime`; substitution #1
//! in `DESIGN.md`).
//!
//! Algorithms:
//!
//! * [`two_round::two_round`] — Algorithm 2 (deterministic, adversarial
//!   partition): the outlier-guessing vectors `V_i[j] = Greedy(P_i, k,
//!   2^j−1)`, the global threshold `r̂`, local mini-ball coverings with
//!   budgets `2^ĵᵢ−1` summing to ≤ 2z, and a coordinator recompression
//!   (Theorem 10);
//! * [`one_round::one_round_randomized`] — Algorithm 6 (random partition):
//!   per-machine budget `z' = min(6z/m + 3 log n, z)` (Theorem 33);
//! * [`r_round::r_round`] — Algorithm 7: tree reduction with fan-in
//!   `β = ⌈m^{1/R}⌉` and error `(1+ε)^R − 1` (Theorem 35);
//! * [`baseline::ceccarello_one_round`] — the Ceccarello–Pietracaprina–
//!   Pucci-style deterministic 1-round baseline whose worker storage
//!   carries the `(k+z)/ε^d` factor the paper improves on.

#![warn(missing_docs)]

pub mod baseline;
pub mod exec;
pub mod one_round;
pub mod r_round;
pub mod two_round;

pub use baseline::ceccarello_one_round;
pub use exec::{parallel_map, pool, MpcCoreset, MpcRunStats};
pub use one_round::one_round_randomized;
pub use r_round::r_round;
pub use two_round::two_round;
