//! Algorithm 7: the deterministic R-round trade-off (Theorem 35).
//!
//! With fan-in `β = ⌈m^{1/R}⌉` the machines form a β-ary reduction tree:
//! in every round each active machine recompresses what it received into a
//! mini-ball covering and ships it one level up.  After `R` rounds machine
//! `M_1` holds the union, a `((1+ε)^R − 1, k, z)`-coreset (Lemma 34), with
//! per-machine storage `O(n^{1/(R+1)} (k/ε^d + z)^{R/(R+1)})` when `m` is
//! tuned accordingly.  The `R = 1` instantiation is the Table-1 trade-off
//! row's left end; large `R` trades rounds for less memory.

use kcz_coreset::compose::union_coverings;
use kcz_coreset::mbc::mbc_construction_with;
use kcz_kcenter::charikar::GreedyParams;
use kcz_metric::{unit_weighted, MetricSpace, SpaceUsage, Weighted};

use crate::exec::{parallel_map, words_of_weighted, MpcCoreset, MpcRunStats};

/// Fan-in `β = ⌈m^{1/R}⌉`.
pub fn fan_in(m: usize, rounds: usize) -> usize {
    assert!(rounds >= 1, "need at least one round");
    if m <= 1 {
        return 1;
    }
    let beta = (m as f64).powf(1.0 / rounds as f64).ceil() as usize;
    beta.max(2)
}

/// Runs Algorithm 7 with `rounds = R`.  Machine 0 (i.e. `M_1`) ends up as
/// the coordinator holding the final `((1+ε)^R − 1, k, z)`-coreset.
pub fn r_round<P, M>(
    metric: &M,
    partition: &[Vec<P>],
    k: usize,
    z: u64,
    eps: f64,
    rounds: usize,
    params: &GreedyParams,
) -> MpcCoreset<P>
where
    P: Clone + SpaceUsage + Send + Sync,
    M: MetricSpace<P>,
{
    assert!(!partition.is_empty(), "need at least one machine");
    assert!(rounds >= 1, "need at least one round");
    assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
    let m = partition.len();
    let beta = fan_in(m, rounds);

    let mut sets: Vec<Vec<Weighted<P>>> = partition.iter().map(|pts| unit_weighted(pts)).collect();

    let mut worker_peak = 0usize;
    let mut comm_words = 0u64;
    let mut round_comm_words = Vec::with_capacity(rounds);
    let mut final_received = 0usize;

    for t in 1..=rounds {
        let round_start = comm_words;
        // Each active machine compresses what it holds...
        let held: Vec<usize> = sets.iter().map(|s| words_of_weighted(s)).collect();
        let compressed = parallel_map(std::mem::take(&mut sets), |_, s| {
            mbc_construction_with(metric, &s, k, z, eps, params).reps
        });
        for (i, c) in compressed.iter().enumerate() {
            let footprint = held[i] + words_of_weighted(c);
            if !(t == rounds && i == 0) {
                worker_peak = worker_peak.max(footprint);
            }
            // ...and sends it to machine ⌈i/β⌉ (self-sends are free).
            if (i / beta != i || t < rounds) && i != 0 {
                comm_words += words_of_weighted(c) as u64;
            }
        }
        // Regroup: machine i of the next level receives β consecutive sets.
        let mut next: Vec<Vec<Weighted<P>>> = Vec::with_capacity(compressed.len().div_ceil(beta));
        for chunk in compressed.chunks(beta) {
            next.push(union_coverings(chunk.iter().cloned()));
        }
        sets = next;
        round_comm_words.push(comm_words - round_start);
        if t == rounds {
            final_received = sets.first().map(|s| words_of_weighted(s)).unwrap_or(0);
        }
    }
    assert_eq!(
        sets.len(),
        1,
        "β = ⌈m^(1/R)⌉ guarantees collapse to one machine after R rounds"
    );
    let coreset = sets.pop().expect("one surviving set");

    let stats = MpcRunStats {
        rounds,
        machines: m,
        worker_peak_words: worker_peak,
        coordinator_peak_words: final_received,
        comm_words,
        round_comm_words,
        coreset_size: coreset.len(),
    };
    MpcCoreset {
        coreset,
        effective_eps: (1.0 + eps).powi(rounds as i32) - 1.0,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_coreset::validate::validate_coreset;
    use kcz_metric::{total_weight, L2};

    fn instance(m: usize) -> (Vec<[f64; 2]>, Vec<Vec<[f64; 2]>>) {
        let mut all = vec![];
        for i in 0..48u64 {
            let c = (i % 2) as f64 * 80.0;
            all.push([c + (i as f64 * 0.029).sin(), c + (i as f64 * 0.041).cos()]);
        }
        all.push([4000.0, 4000.0]);
        all.push([-4000.0, 4000.0]);
        let mut machines = vec![vec![]; m];
        for (i, p) in all.iter().enumerate() {
            machines[i % m].push(*p);
        }
        (all, machines)
    }

    #[test]
    fn fan_in_collapses_in_r_rounds() {
        for (m, r) in [(16usize, 2usize), (16, 4), (27, 3), (5, 1), (1, 3)] {
            let beta = fan_in(m, r);
            assert!(
                beta.pow(r as u32) >= m,
                "β={beta} too small for m={m}, R={r}"
            );
        }
    }

    #[test]
    fn r1_equals_direct_union() {
        let (all, machines) = instance(4);
        let res = r_round(&L2, &machines, 2, 2, 0.4, 1, &GreedyParams::default());
        assert_eq!(res.stats.rounds, 1);
        assert_eq!(total_weight(&res.coreset), all.len() as u64);
        assert!((res.effective_eps - 0.4).abs() < 1e-12);
    }

    #[test]
    fn multi_round_output_is_valid_coreset() {
        let (all, machines) = instance(9);
        let eps = 0.2;
        let rounds = 2;
        let res = r_round(&L2, &machines, 2, 2, eps, rounds, &GreedyParams::default());
        let weighted: Vec<_> = all.iter().map(|p| kcz_metric::Weighted::unit(*p)).collect();
        assert_eq!(total_weight(&res.coreset), all.len() as u64);
        let report = validate_coreset(&L2, &weighted, &res.coreset, 2, 2, res.effective_eps);
        assert!(report.condition1 && report.condition2, "{report:?}");
        assert!((res.effective_eps - (1.2f64.powi(2) - 1.0)).abs() < 1e-12);
        // One comm entry per tree level, summing to the total.
        assert_eq!(res.stats.round_comm_words.len(), rounds);
        assert_eq!(
            res.stats.round_comm_words.iter().sum::<u64>(),
            res.stats.comm_words
        );
        assert!(
            res.stats.round_comm_words.iter().all(|&w| w > 0),
            "every reduction level of a 9-machine β-ary tree ships data: {:?}",
            res.stats.round_comm_words
        );
    }

    #[test]
    fn more_rounds_less_worker_memory() {
        // With 16 machines, R=4 (β=2) must hold fewer words per worker
        // than R=1 (β=16, coordinator receives everything at once).
        let (_, machines) = instance(16);
        let r1 = r_round(&L2, &machines, 2, 2, 0.5, 1, &GreedyParams::default());
        let r4 = r_round(&L2, &machines, 2, 2, 0.5, 4, &GreedyParams::default());
        assert!(
            r4.stats.coordinator_peak_words <= r1.stats.coordinator_peak_words,
            "R=4 coordinator {} vs R=1 {}",
            r4.stats.coordinator_peak_words,
            r1.stats.coordinator_peak_words
        );
        assert_eq!(total_weight(&r1.coreset), total_weight(&r4.coreset));
    }

    #[test]
    fn single_machine_single_round() {
        let machines = vec![vec![[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]];
        let res = r_round(&L2, &machines, 1, 0, 1.0, 1, &GreedyParams::default());
        assert_eq!(total_weight(&res.coreset), 3);
    }
}
