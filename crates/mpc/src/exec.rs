//! Round executor and storage/communication accounting.
//!
//! Machine-local computations within a round are independent, so the
//! executor fans them out over the workspace's shared persistent worker
//! pool ([`kcz_engine::runtime`]) — one pool for every round of every
//! algorithm, instead of the thread-per-round spawning this module used
//! to do itself.  Storage is accounted in machine words via
//! [`kcz_metric::SpaceUsage`]: a machine's footprint in a round is
//! everything it holds when the round ends — its local input plus every
//! message it received.

use kcz_metric::{SpaceUsage, Weighted};

/// The shared runtime every MPC round executes on: the process-wide
/// persistent pool of [`kcz_engine::runtime::global`].
pub fn pool() -> &'static kcz_engine::runtime::Pool {
    kcz_engine::runtime::global()
}

/// Resource metrics of one simulated MPC execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MpcRunStats {
    /// Communication rounds used (the paper's convention: communication
    /// rounds, not computation rounds — see the Table 1 footnote).
    pub rounds: usize,
    /// Number of machines (workers + coordinator).
    pub machines: usize,
    /// Peak storage of any worker machine, in words.
    pub worker_peak_words: usize,
    /// Peak storage of the coordinator, in words.
    pub coordinator_peak_words: usize,
    /// Total words sent over the (simulated) network.
    pub comm_words: u64,
    /// Words sent in each communication round, in round order
    /// (`round_comm_words.len() == rounds` and the entries sum to
    /// [`MpcRunStats::comm_words`] — the per-round split the paper's
    /// communication bounds are stated against).
    pub round_comm_words: Vec<u64>,
    /// Size (representatives) of the final coreset.
    pub coreset_size: usize,
}

impl MpcRunStats {
    /// Records this run's communication accounting into `metrics` under
    /// `mpc.<algorithm>.…`: one counter per round
    /// (`…round<i>.comm_words`, 1-based) plus the totals.  Counters
    /// accumulate across runs recorded into the same registry.
    pub fn record_comm(&self, metrics: &kcz_obs::MetricsHandle, algorithm: &str) {
        if !metrics.enabled() {
            return;
        }
        metrics
            .counter(&format!("mpc.{algorithm}.comm_words"))
            .add(self.comm_words);
        metrics.counter(&format!("mpc.{algorithm}.runs")).incr();
        for (i, &w) in self.round_comm_words.iter().enumerate() {
            metrics
                .counter(&format!("mpc.{algorithm}.round{}.comm_words", i + 1))
                .add(w);
        }
        metrics
            .gauge(&format!("mpc.{algorithm}.rounds"))
            .set(self.rounds as u64);
        metrics
            .gauge(&format!("mpc.{algorithm}.worker_peak_words"))
            .set_max(self.worker_peak_words as u64);
        metrics
            .gauge(&format!("mpc.{algorithm}.coordinator_peak_words"))
            .set_max(self.coordinator_peak_words as u64);
    }
}

/// Output of an MPC coreset algorithm.
#[derive(Debug, Clone)]
pub struct MpcCoreset<P> {
    /// The coreset held by the coordinator at the end.
    pub coreset: Vec<Weighted<P>>,
    /// The error parameter the output actually guarantees (e.g. `3ε`
    /// for the 2-round algorithm, `(1+ε)^R − 1` for R rounds).
    pub effective_eps: f64,
    /// Resource accounting.
    pub stats: MpcRunStats,
}

/// Applies `f` to every item in parallel on the shared runtime,
/// preserving order.
///
/// This is the simulator's "round": each item is one machine's local
/// computation, dispatched through the persistent pool (no per-round
/// thread spawning).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    pool().scoped_map(items, f)
}

/// Words of a point slice (a machine's raw local input).
pub fn words_of_points<P: SpaceUsage>(pts: &[P]) -> usize {
    pts.iter().map(SpaceUsage::words).sum()
}

/// Words of a weighted slice (a mini-ball covering in transit).
pub fn words_of_weighted<P: SpaceUsage>(pts: &[Weighted<P>]) -> usize {
    pts.iter().map(SpaceUsage::words).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(items, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_actually_runs_concurrently_safe() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(items, |_, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn record_comm_splits_rounds_and_accumulates() {
        use kcz_obs::{MetricsHandle, Registry};
        let stats = MpcRunStats {
            rounds: 2,
            machines: 4,
            worker_peak_words: 70,
            coordinator_peak_words: 90,
            comm_words: 100,
            round_comm_words: vec![60, 40],
            coreset_size: 5,
        };
        let registry = Registry::new();
        let handle = MetricsHandle::new(&registry);
        stats.record_comm(&handle, "two_round");
        stats.record_comm(&handle, "two_round");
        assert_eq!(
            registry.counter_value("mpc.two_round.comm_words"),
            Some(200)
        );
        assert_eq!(registry.counter_value("mpc.two_round.runs"), Some(2));
        assert_eq!(
            registry.counter_value("mpc.two_round.round1.comm_words"),
            Some(120)
        );
        assert_eq!(
            registry.counter_value("mpc.two_round.round2.comm_words"),
            Some(80)
        );
        assert_eq!(registry.gauge_value("mpc.two_round.rounds"), Some(2));
        assert_eq!(
            registry.gauge_value("mpc.two_round.worker_peak_words"),
            Some(70)
        );
        // A disabled handle records nothing and registers nothing.
        let empty = Registry::new();
        stats.record_comm(&MetricsHandle::disabled(), "two_round");
        assert!(empty.counters().is_empty());
    }

    #[test]
    fn word_counters() {
        let pts = vec![[0.0f64; 3]; 4];
        assert_eq!(words_of_points(&pts), 12);
        let w = vec![Weighted::new([0.0f64; 3], 2); 4];
        assert_eq!(words_of_weighted(&w), 16);
    }
}
