//! Algorithm 6: the randomized 1-round MPC coreset (Theorem 33).
//!
//! When the input is distributed *randomly* over the `m` machines, no
//! machine holds more than `z' = 6z/m + 3 log n` outliers with high
//! probability (Lemma 32, a Chernoff bound).  Each machine can therefore
//! run `MBCConstruction(P_i, k, z', ε)` locally and ship the result in a
//! single round; the union is an (ε,k,z)-mini-ball covering w.h.p.
//! (Lemma 4), which the coordinator recompresses.
//!
//! The algorithm itself makes no random choices — the randomness is the
//! distribution assumption, which `kcz-workloads::random_partition`
//! realises.  On an adversarial distribution the w.h.p. guarantee is void;
//! the `F2` experiments demonstrate exactly that failure mode.

use kcz_coreset::compose::{composed_eps, union_coverings};
use kcz_coreset::mbc::mbc_construction_with;
use kcz_kcenter::charikar::GreedyParams;
use kcz_metric::{unit_weighted, MetricSpace, SpaceUsage};

use crate::exec::{parallel_map, words_of_points, words_of_weighted, MpcCoreset, MpcRunStats};

/// Output of [`one_round_randomized`].
#[derive(Debug, Clone)]
pub struct OneRoundResult<P> {
    /// The coreset and resource accounting.
    pub output: MpcCoreset<P>,
    /// The per-machine outlier budget `z' = min(6z/m + 3 log n, z)`.
    pub z_prime: u64,
}

/// The paper's per-machine budget `z' = min(6z/m + 3·log₂ n, z)`.
pub fn z_prime(n: u64, m: usize, z: u64) -> u64 {
    if n == 0 || m == 0 {
        return z;
    }
    let bound = (6.0 * z as f64 / m as f64 + 3.0 * (n.max(2) as f64).log2()).ceil() as u64;
    bound.min(z)
}

/// Runs Algorithm 6 on `partition[i] = P_i`, assumed randomly distributed.
/// Machine 0 doubles as the coordinator.
pub fn one_round_randomized<P, M>(
    metric: &M,
    partition: &[Vec<P>],
    k: usize,
    z: u64,
    eps: f64,
    params: &GreedyParams,
) -> OneRoundResult<P>
where
    P: Clone + SpaceUsage + Send + Sync,
    M: MetricSpace<P>,
{
    assert!(!partition.is_empty(), "need at least one machine");
    assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
    let m = partition.len();
    let n: u64 = partition.iter().map(|p| p.len() as u64).sum();
    let zp = z_prime(n, m, z);

    let coverings = parallel_map(partition.iter().collect(), |_, pts: &Vec<P>| {
        let weighted = unit_weighted(pts);
        mbc_construction_with(metric, &weighted, k, zp, eps, params).reps
    });

    let mut worker_peak = 0usize;
    let mut comm_words = 0u64;
    for (i, pts) in partition.iter().enumerate() {
        let held = words_of_points(pts) + words_of_weighted(&coverings[i]);
        if i != 0 {
            worker_peak = worker_peak.max(held);
            comm_words += words_of_weighted(&coverings[i]) as u64;
        }
    }

    let received: usize = coverings.iter().map(|c| words_of_weighted(c)).sum();
    let union = union_coverings(coverings);
    let final_mbc = mbc_construction_with(metric, &union, k, z, eps, params);
    let coordinator_peak =
        words_of_points(&partition[0]) + received + words_of_weighted(&final_mbc.reps);

    let stats = MpcRunStats {
        rounds: 1,
        machines: m,
        worker_peak_words: worker_peak,
        coordinator_peak_words: coordinator_peak,
        comm_words,
        round_comm_words: vec![comm_words],
        coreset_size: final_mbc.reps.len(),
    };
    OneRoundResult {
        output: MpcCoreset {
            coreset: final_mbc.reps,
            effective_eps: composed_eps(eps, eps),
            stats,
        },
        z_prime: zp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_coreset::validate::validate_coreset;
    use kcz_metric::{total_weight, Weighted, L2};

    /// Clusters + outliers dealt round-robin (a stand-in for a random
    /// distribution with an even outlier spread).
    fn spread_instance(z: u64, m: usize) -> (Vec<[f64; 2]>, Vec<Vec<[f64; 2]>>) {
        let mut all = vec![];
        for i in 0..z {
            all.push([-9e4 - (i as f64) * 1e4, 8e4]);
        }
        for i in 0..40u64 {
            let c = (i % 2) as f64 * 60.0;
            all.push([c + (i as f64 * 0.03).sin(), c - (i as f64 * 0.05).cos()]);
        }
        let mut machines = vec![vec![]; m];
        for (i, p) in all.iter().enumerate() {
            machines[i % m].push(*p);
        }
        (all, machines)
    }

    #[test]
    fn z_prime_formula() {
        // Large m: budget collapses toward 3 log n.
        assert!(z_prime(1024, 64, 1000) <= 6 * 1000 / 64 + 31);
        // Tiny z: never exceeds z itself.
        assert_eq!(z_prime(1024, 4, 2), 2);
        assert_eq!(z_prime(0, 4, 5), 5);
    }

    #[test]
    fn output_is_valid_coreset_on_spread_data() {
        let (all, machines) = spread_instance(4, 4);
        let eps = 0.4;
        let res = one_round_randomized(&L2, &machines, 2, 4, eps, &GreedyParams::default());
        let weighted: Vec<Weighted<[f64; 2]>> = all.iter().map(|p| Weighted::unit(*p)).collect();
        assert_eq!(total_weight(&res.output.coreset), all.len() as u64);
        let report = validate_coreset(
            &L2,
            &weighted,
            &res.output.coreset,
            2,
            4,
            res.output.effective_eps,
        );
        assert!(report.condition1 && report.condition2, "{report:?}");
    }

    #[test]
    fn single_round_stats() {
        let (_, machines) = spread_instance(4, 4);
        let res = one_round_randomized(&L2, &machines, 2, 4, 0.5, &GreedyParams::default());
        assert_eq!(res.output.stats.rounds, 1);
        assert_eq!(res.output.stats.machines, 4);
        assert!(res.output.stats.comm_words > 0);
        // No broadcast phase: communication is strictly coverings → coordinator,
        // so the single round carries every word.
        assert_eq!(
            res.output.stats.round_comm_words,
            vec![res.output.stats.comm_words]
        );
        assert!(res.z_prime <= 4);
    }

    #[test]
    fn worker_budget_caps_coordinator_traffic() {
        // With z' < z, workers ship at most k(12/ε)^d + z' points each.
        let (_, machines) = spread_instance(40, 8);
        let res = one_round_randomized(&L2, &machines, 2, 40, 1.0, &GreedyParams::default());
        let bound = kcz_coreset::mbc_size_bound(2, res.z_prime, 1.0, 2);
        // comm per worker ≤ bound × 3 words.
        assert!(res.output.stats.comm_words <= 7 * 3 * bound);
    }
}
