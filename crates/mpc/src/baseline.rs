//! The Ceccarello–Pietracaprina–Pucci-style deterministic 1-round baseline
//! (VLDB 2019, reference \[11\] of the paper).
//!
//! Each machine summarises its share *without* knowing how many outliers
//! it holds, by being conservative: it selects `τ = k + z` farthest-first
//! centers (any optimal solution's k balls plus z outliers can be hit by
//! k+z centers, so the τ-center radius `r_i ≤ 2·opt_{k,z}(P_i)`), then
//! re-clusters its points at granularity `ε·r_i/2`, producing a local
//! (ε,k,z)-mini-ball covering of size `Θ((k+z)·(1/ε)^d)` — the `z/ε^d`
//! term in Table 1's baseline storage that the paper's 2-round algorithm
//! removes.  One communication round ships everything to the coordinator,
//! which recompresses.

use kcz_coreset::compose::{composed_eps, union_coverings};
use kcz_coreset::mbc::mbc_construction_with;
use kcz_coreset::update_coreset;
use kcz_kcenter::charikar::GreedyParams;
use kcz_kcenter::gonzalez::farthest_first;
use kcz_metric::{unit_weighted, MetricSpace, SpaceUsage};

use crate::exec::{parallel_map, words_of_points, words_of_weighted, MpcCoreset, MpcRunStats};

/// Runs the baseline on `partition[i] = P_i` (any distribution).
/// Machine 0 doubles as the coordinator.
pub fn ceccarello_one_round<P, M>(
    metric: &M,
    partition: &[Vec<P>],
    k: usize,
    z: u64,
    eps: f64,
    params: &GreedyParams,
) -> MpcCoreset<P>
where
    P: Clone + SpaceUsage + Send + Sync,
    M: MetricSpace<P>,
{
    assert!(!partition.is_empty(), "need at least one machine");
    assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
    let m = partition.len();
    let tau = k + z as usize;

    let coverings = parallel_map(partition.iter().collect(), |_, pts: &Vec<P>| {
        let weighted = unit_weighted(pts);
        // τ-center radius bounds opt_{k,z}(P_i) within factor 2 ...
        let ff = farthest_first(metric, &weighted, tau, 0);
        // ... so mini-balls of radius ε·r_i/2 satisfy the ε·opt covering
        // property regardless of how many outliers this machine holds.
        update_coreset(metric, &weighted, eps * ff.radius / 2.0)
    });

    let mut worker_peak = 0usize;
    let mut comm_words = 0u64;
    for (i, pts) in partition.iter().enumerate() {
        let held = words_of_points(pts) + words_of_weighted(&coverings[i]);
        if i != 0 {
            worker_peak = worker_peak.max(held);
            comm_words += words_of_weighted(&coverings[i]) as u64;
        }
    }

    let received: usize = coverings.iter().map(|c| words_of_weighted(c)).sum();
    let union = union_coverings(coverings);
    let final_mbc = mbc_construction_with(metric, &union, k, z, eps, params);
    let coordinator_peak =
        words_of_points(&partition[0]) + received + words_of_weighted(&final_mbc.reps);

    MpcCoreset {
        coreset: final_mbc.reps,
        effective_eps: composed_eps(eps, eps),
        stats: MpcRunStats {
            rounds: 1,
            machines: m,
            worker_peak_words: worker_peak,
            coordinator_peak_words: coordinator_peak,
            comm_words,
            round_comm_words: vec![comm_words],
            coreset_size: 0,
        },
    }
    .with_sized_stats()
}

impl<P> MpcCoreset<P> {
    fn with_sized_stats(mut self) -> Self {
        self.stats.coreset_size = self.coreset.len();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_round::two_round;
    use kcz_coreset::validate::validate_coreset;
    use kcz_metric::{total_weight, Weighted, L2};

    fn adversarial_instance(z: u64, m: usize) -> (Vec<[f64; 2]>, Vec<Vec<[f64; 2]>>) {
        let mut all = vec![];
        let mut machines: Vec<Vec<[f64; 2]>> = vec![vec![]; m];
        for i in 0..z {
            let p = [1e6 + (i as f64) * 3e4, 1e6 - (i as f64) * 2e4];
            all.push(p);
            machines[0].push(p);
        }
        for i in 0..60u64 {
            let c = (i % 2) as f64 * 500.0;
            let p = [
                c + (i as f64 * 0.7).sin() * 2.0,
                c + (i as f64 * 1.3).cos() * 2.0,
            ];
            all.push(p);
            machines[(i % (m as u64 - 1) + 1) as usize].push(p);
        }
        (all, machines)
    }

    #[test]
    fn baseline_output_is_valid_coreset() {
        let (all, machines) = adversarial_instance(5, 4);
        let eps = 0.4;
        let res = ceccarello_one_round(&L2, &machines, 2, 5, eps, &GreedyParams::default());
        let weighted: Vec<Weighted<[f64; 2]>> = all.iter().map(|p| Weighted::unit(*p)).collect();
        assert_eq!(total_weight(&res.coreset), all.len() as u64);
        let report = validate_coreset(&L2, &weighted, &res.coreset, 2, 5, res.effective_eps);
        assert!(report.condition1 && report.condition2, "{report:?}");
    }

    #[test]
    fn paper_beats_baseline_on_outlier_heavy_comm() {
        // The separation mechanism of Table 1: the baseline refines every
        // worker's data at granularity ε·r_i/2 where r_i comes from
        // τ = k+z farthest-first centers — a radius that *shrinks* as z
        // grows, producing Θ((k+z)/ε^d) mini-balls.  The 2-round algorithm
        // refines at ε·r̂/3 with r̂ ≈ 3·opt, independent of z.  Dense
        // workers + outliers parked on the coordinator expose the gap.
        let z = 30u64;
        let mut machines: Vec<Vec<[f64; 2]>> = vec![vec![]];
        for i in 0..z {
            machines[0].push([1e6 + (i as f64) * 3e4, -1e6]);
        }
        let mut s = 0xC0FFEEu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..3 {
            let mut w = Vec::with_capacity(400);
            for _ in 0..400 {
                w.push([next() * 100.0, next() * 100.0]);
            }
            machines.push(w);
        }
        let eps = 1.0;
        let base = ceccarello_one_round(&L2, &machines, 1, z, eps, &GreedyParams::default());
        let ours = two_round(&L2, &machines, 1, z, eps, &GreedyParams::default());
        assert!(
            2 * ours.output.stats.comm_words < base.stats.comm_words,
            "ours {} vs baseline {}",
            ours.output.stats.comm_words,
            base.stats.comm_words
        );
    }

    #[test]
    fn one_communication_round() {
        let (_, machines) = adversarial_instance(3, 4);
        let res = ceccarello_one_round(&L2, &machines, 2, 3, 0.5, &GreedyParams::default());
        assert_eq!(res.stats.rounds, 1);
        assert_eq!(res.stats.coreset_size, res.coreset.len());
        assert_eq!(res.stats.round_comm_words, vec![res.stats.comm_words]);
    }
}
