//! The greedy 3-approximation for k-center with outliers of Charikar,
//! Khuller, Mount and Narasimhan (SODA 2001) — `Greedy(P, k, z)` in the
//! paper — in its weighted form.
//!
//! For a guessed radius `r` the algorithm repeatedly picks the point whose
//! `r`-ball covers the most uncovered weight and discards everything within
//! `3r` of it; the guess is feasible when, after `k` picks, the uncovered
//! weight is at most `z`.  The smallest feasible guess `r̂` over a candidate
//! set satisfies `r̂ ≤ opt`, so the produced solution with radius `3r̂`
//! certifies `opt ≤ radius ≤ 3·opt` — exactly the property Lemmas 7 and 8
//! of the paper consume.
//!
//! Candidate radii: for small inputs we binary-search the exact sorted set
//! of pairwise distances (the classical formulation); for large inputs we
//! binary-search a geometric grid with resolution `1+η`, degrading the
//! guarantee to `3(1+η)·opt` (substitution #2 in `DESIGN.md`).

use kcz_metric::{MetricSpace, Weighted};

use crate::cost::cost_with_outliers;

/// Tuning knobs for [`greedy_with`].
#[derive(Debug, Clone)]
pub struct GreedyParams {
    /// Use the exact pairwise-distance candidate set when `n` is at most
    /// this; otherwise use a geometric grid.
    pub exact_candidates_max_n: usize,
    /// Resolution `1+η` of the geometric candidate grid.
    pub geometric_step: f64,
    /// Precompute the full distance matrix when `n` is at most this.
    pub matrix_max_n: usize,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams {
            exact_candidates_max_n: 600,
            geometric_step: 1.01,
            matrix_max_n: 1500,
        }
    }
}

/// Output of [`greedy`].
#[derive(Debug, Clone)]
pub struct GreedySolution<P> {
    /// At most `k` centers (a subset of the input points).
    pub centers: Vec<P>,
    /// Certified covering radius: all but outlier-weight ≤ `z` of the input
    /// lies within `radius` of a center, and `opt ≤ radius ≤ 3(1+η)·opt`.
    pub radius: f64,
    /// The feasible guess `r̂` the search settled on (`radius ≤ 3·r̂`).
    pub guess: f64,
    /// Uncovered weight of the returned solution (≤ `z`).
    pub uncovered: u64,
}

/// `Greedy(P, k, z)` with default parameters.  See [`greedy_with`].
pub fn greedy<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
) -> GreedySolution<P> {
    greedy_with(metric, points, k, z, &GreedyParams::default())
}

/// The weighted Charikar-et-al. greedy.
///
/// Returns an empty solution with radius `0` when the entire weight fits in
/// the outlier budget, and panics if `k == 0` while weight must be covered.
pub fn greedy_with<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
    params: &GreedyParams,
) -> GreedySolution<P> {
    let n = points.len();
    let total: u64 = points.iter().map(|p| p.weight).sum();
    if total <= z || n == 0 {
        return GreedySolution {
            centers: Vec::new(),
            radius: 0.0,
            guess: 0.0,
            uncovered: total,
        };
    }
    assert!(k > 0, "k must be positive when weight must be covered");

    let weights: Vec<u64> = points.iter().map(|p| p.weight).collect();

    // Distance oracle: full matrix for small inputs, on-the-fly otherwise.
    let matrix: Option<Vec<f64>> = if n <= params.matrix_max_n {
        let mut m = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.dist(&points[i].point, &points[j].point);
                m[i * n + j] = d;
                m[j * n + i] = d;
            }
        }
        Some(m)
    } else {
        None
    };
    let dist = |i: usize, j: usize| -> f64 {
        match &matrix {
            Some(m) => m[i * n + j],
            None => metric.dist(&points[i].point, &points[j].point),
        }
    };

    let candidates = candidate_radii(&dist, n, params);
    debug_assert!(!candidates.is_empty());

    // Feasibility is monotone in r for the guarantee's purposes: the
    // largest candidate (≥ diameter) always succeeds with one center.
    let mut lo = 0usize;
    let mut hi = candidates.len() - 1;
    let mut best: Option<(usize, Vec<usize>)> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        match disk_greedy(&dist, &weights, k, z, candidates[mid]) {
            Some(centers) => {
                best = Some((mid, centers));
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            None => {
                lo = mid + 1;
            }
        }
    }
    let (idx, center_idx) = best.unwrap_or_else(|| {
        // The diameter guess must succeed; recompute defensively.
        let last = candidates.len() - 1;
        let c = disk_greedy(&dist, &weights, k, z, candidates[last])
            .expect("diameter-radius guess must be feasible");
        (last, c)
    });
    let guess = candidates[idx];
    let centers: Vec<P> = center_idx
        .iter()
        .map(|&i| points[i].point.clone())
        .collect();
    // Tighten the certified 3·r̂ to the measured cost of this center set.
    let measured = cost_with_outliers(metric, points, &centers, z);
    let radius = measured.min(3.0 * guess);
    let uncovered = crate::cost::uncovered_weight(metric, points, &centers, radius);
    GreedySolution {
        centers,
        radius,
        guess,
        uncovered,
    }
}

/// Candidate radii for the binary search, ascending, first element `0`.
fn candidate_radii(
    dist: &impl Fn(usize, usize) -> f64,
    n: usize,
    params: &GreedyParams,
) -> Vec<f64> {
    if n <= params.exact_candidates_max_n {
        let mut c = Vec::with_capacity(n * (n - 1) / 2 + 1);
        c.push(0.0);
        for i in 0..n {
            for j in (i + 1)..n {
                c.push(dist(i, j));
            }
        }
        c.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN distances"));
        c.dedup();
        c
    } else {
        // Upper bound on the diameter: 2 × the eccentricity of point 0.
        let ecc = (1..n).map(|j| dist(0, j)).fold(0.0f64, f64::max);
        let hi = (2.0 * ecc).max(f64::MIN_POSITIVE);
        // Lower bound: smallest positive distance within a sample.
        let sample = 512.min(n);
        let mut lo = f64::INFINITY;
        for i in 0..sample {
            for j in (i + 1)..sample {
                let d = dist(i, j);
                if d > 0.0 && d < lo {
                    lo = d;
                }
            }
        }
        if !lo.is_finite() || lo <= 0.0 {
            lo = hi * 1e-9;
        }
        lo = lo.min(hi);
        let step = params.geometric_step.max(1.0 + 1e-6);
        let mut c = vec![0.0, lo];
        let mut r = lo;
        while r < hi {
            r *= step;
            c.push(r.min(hi));
        }
        c
    }
}

/// One feasibility test of the Charikar greedy at radius guess `r`:
/// greedily pick up to `k` disk centers; return their indices if the
/// uncovered weight ends up ≤ `z`.
///
/// `O(n²)` total: gains are maintained incrementally as points get covered.
fn disk_greedy(
    dist: &impl Fn(usize, usize) -> f64,
    weights: &[u64],
    k: usize,
    z: u64,
    r: f64,
) -> Option<Vec<usize>> {
    let n = weights.len();
    let mut covered = vec![false; n];
    let mut uncovered_total: u64 = weights.iter().sum();
    // gain[p] = uncovered weight within distance r of p.
    let mut gain: Vec<u64> = vec![0; n];
    for (p, gp) in gain.iter_mut().enumerate() {
        let mut g = 0u64;
        for (q, &wq) in weights.iter().enumerate() {
            if dist(p, q) <= r {
                g += wq;
            }
        }
        *gp = g;
    }
    let mut centers = Vec::with_capacity(k);
    for _ in 0..k {
        if uncovered_total <= z {
            break;
        }
        let (best, &g) = gain
            .iter()
            .enumerate()
            .max_by_key(|&(_, g)| *g)
            .expect("non-empty gains");
        if g == 0 {
            // No r-ball covers any uncovered weight; more centers cannot help.
            break;
        }
        centers.push(best);
        for q in 0..n {
            if !covered[q] && dist(best, q) <= 3.0 * r {
                covered[q] = true;
                uncovered_total -= weights[q];
                // q leaves every gain it contributed to.
                for (p, gp) in gain.iter_mut().enumerate() {
                    if dist(p, q) <= r {
                        *gp -= weights[q];
                    }
                }
            }
        }
    }
    if uncovered_total <= z {
        Some(centers)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::{unit_weighted, L2};

    /// Two tight clusters plus two far outliers.
    fn instance() -> Vec<Weighted<[f64; 2]>> {
        let mut raw = vec![];
        for i in 0..10 {
            raw.push([i as f64 * 0.1, 0.0]);
            raw.push([100.0 + i as f64 * 0.1, 0.0]);
        }
        raw.push([1000.0, 0.0]);
        raw.push([-1000.0, 0.0]);
        unit_weighted(&raw)
    }

    #[test]
    fn respects_outlier_budget() {
        let pts = instance();
        let sol = greedy(&L2, &pts, 2, 2);
        assert!(sol.uncovered <= 2);
        // With the two outliers excluded, each cluster has diameter 0.9.
        assert!(sol.radius <= 3.0 * 0.9 + 1e-9, "radius {}", sol.radius);
        assert_eq!(sol.centers.len(), 2);
    }

    #[test]
    fn without_budget_must_cover_outliers() {
        let pts = instance();
        let sol = greedy(&L2, &pts, 2, 0);
        // Any 2-center solution covering the ±1000 points has radius ≥ ~500.
        assert!(sol.radius >= 500.0, "radius {}", sol.radius);
        assert_eq!(sol.uncovered, 0);
    }

    #[test]
    fn weighted_outliers() {
        let mut pts = instance();
        // Make one "outlier" too heavy to discard.
        pts[20].weight = 5; // the [1000, 0] point
        let sol = greedy(&L2, &pts, 2, 2);
        // Covering the weight-5 point costs one center, so the two clusters
        // share the other: opt ≈ 101, and uncovered ≤ 2 forces coverage of
        // the heavy point.
        assert!(sol.uncovered <= 2);
        assert!(sol.radius >= 99.0, "radius {}", sol.radius);
        assert!(sol.radius <= 3.03 * 101.0, "radius {}", sol.radius);
    }

    #[test]
    fn all_points_outliers() {
        let pts = unit_weighted(&[[0.0, 0.0], [1.0, 1.0]]);
        let sol = greedy(&L2, &pts, 3, 2);
        assert_eq!(sol.radius, 0.0);
        assert!(sol.centers.is_empty());
    }

    #[test]
    fn duplicates_and_k_ge_distinct() {
        let pts = unit_weighted(&[[0.0, 0.0], [0.0, 0.0], [5.0, 0.0]]);
        let sol = greedy(&L2, &pts, 2, 0);
        assert_eq!(sol.radius, 0.0);
        assert!(sol.uncovered == 0);
    }

    #[test]
    fn three_approx_vs_exact_small() {
        // 3 clusters, k=3, z=1; opt is the in-cluster radius.
        let raw = vec![
            [0.0, 0.0],
            [1.0, 0.0],
            [50.0, 0.0],
            [51.0, 0.0],
            [100.0, 0.0],
            [101.0, 0.0],
            [500.0, 0.0], // outlier
        ];
        let pts = unit_weighted(&raw);
        let sol = greedy(&L2, &pts, 3, 1);
        // opt = 0.5 with centers anywhere, 1.0 with centers in P.
        assert!(sol.radius <= 3.0, "radius {}", sol.radius);
        assert!(sol.uncovered <= 1);
    }

    #[test]
    fn geometric_path_matches_exact_path_shape() {
        let pts = instance();
        let exact = greedy_with(
            &L2,
            &pts,
            2,
            2,
            &GreedyParams {
                exact_candidates_max_n: 1000,
                ..Default::default()
            },
        );
        let geo = greedy_with(
            &L2,
            &pts,
            2,
            2,
            &GreedyParams {
                exact_candidates_max_n: 0,
                matrix_max_n: 0,
                ..Default::default()
            },
        );
        assert!(geo.uncovered <= 2);
        // Both certify a 3(1+η)-approximation of the same opt.
        assert!(geo.radius <= 3.03 * exact.radius.max(0.45) + 1e-9);
    }
}
