//! The greedy 3-approximation for k-center with outliers of Charikar,
//! Khuller, Mount and Narasimhan (SODA 2001) — `Greedy(P, k, z)` in the
//! paper — in its weighted form.
//!
//! For a guessed radius `r` the algorithm repeatedly picks the point whose
//! `r`-ball covers the most uncovered weight and discards everything within
//! `3r` of it; the guess is feasible when, after `k` picks, the uncovered
//! weight is at most `z`.  The smallest feasible guess `r̂` over a candidate
//! set satisfies `r̂ ≤ opt`, so the produced solution with radius `3r̂`
//! certifies `opt ≤ radius ≤ 3·opt` — exactly the property Lemmas 7 and 8
//! of the paper consume.
//!
//! Candidate radii: for small inputs we binary-search the exact sorted set
//! of pairwise distances (the classical formulation); for large inputs we
//! binary-search a geometric grid with resolution `1+η`, degrading the
//! guarantee to `3(1+η)·opt` (substitution #2 in `DESIGN.md`).
//!
//! All distance work routes through the batched [`MetricSpace`] kernels:
//! the distance matrix is filled row-by-row with `dist_many`, and the
//! matrix-free path answers ball queries with `cover_weight` /
//! `within_indices` (deferred `sqrt`) instead of per-point `dist` calls.

use std::collections::BTreeMap;

use kcz_metric::{ColumnSet, MetricSpace, Precision, Weighted};

use crate::cost::cost_with_outliers;

/// Tuning knobs for [`greedy_with`].
#[derive(Debug, Clone)]
pub struct GreedyParams {
    /// Use the exact pairwise-distance candidate set when `n` is at most
    /// this; otherwise use a geometric grid.
    pub exact_candidates_max_n: usize,
    /// Resolution `1+η` of the geometric candidate grid.
    pub geometric_step: f64,
    /// Precompute the full distance matrix when `n` is at most this.
    pub matrix_max_n: usize,
    /// Warm-start hint: a previous solve's feasible guess `r̂` on nearby
    /// data.  The radius search starts at this value and brackets
    /// outwards instead of bisecting the whole candidate range — under
    /// the same monotone-feasibility assumption the cold bisection makes,
    /// the result is the identical minimal feasible candidate, found in
    /// ~2 feasibility probes when the hint is still (nearly) right.
    /// `None` bisects cold.
    pub warm_guess: Option<f64>,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams {
            exact_candidates_max_n: 600,
            geometric_step: 1.01,
            matrix_max_n: 1500,
            warm_guess: None,
        }
    }
}

impl GreedyParams {
    /// Default parameters with a warm-start hint (see
    /// [`GreedyParams::warm_guess`]).
    pub fn warm(guess: f64) -> Self {
        GreedyParams {
            warm_guess: Some(guess),
            ..Default::default()
        }
    }
}

/// Output of [`greedy`].
#[derive(Debug, Clone)]
pub struct GreedySolution<P> {
    /// At most `k` centers (a subset of the input points).
    pub centers: Vec<P>,
    /// Certified covering radius: all but outlier-weight ≤ `z` of the input
    /// lies within `radius` of a center, and `opt ≤ radius ≤ 3(1+η)·opt`.
    pub radius: f64,
    /// The feasible guess `r̂` the search settled on (`radius ≤ 3·r̂`).
    pub guess: f64,
    /// Uncovered weight of the returned solution (≤ `z`).
    pub uncovered: u64,
    /// Feasibility probes ([`disk_greedy`] calls) the radius search
    /// spent — the observable a warm start shrinks (the result itself is
    /// hint-independent).
    pub probes: usize,
    /// Probes answered from a re-certified [`SolveState`] verdict instead
    /// of a `disk_greedy` run — the observable the delta-aware solve
    /// grows (always `0` for the stateless entry points).
    pub reused_verdicts: usize,
}

/// `Greedy(P, k, z)` with default parameters.  See [`greedy_with`].
pub fn greedy<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
) -> GreedySolution<P> {
    greedy_with(metric, points, k, z, &GreedyParams::default())
}

/// The weighted Charikar-et-al. greedy.
///
/// Returns an empty solution with radius `0` when the entire weight fits in
/// the outlier budget, and panics if `k == 0` while weight must be covered.
pub fn greedy_with<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
    params: &GreedyParams,
) -> GreedySolution<P> {
    let n = points.len();
    let total: u64 = points.iter().fold(0u64, |a, p| a.saturating_add(p.weight));
    if total <= z || n == 0 {
        return GreedySolution {
            centers: Vec::new(),
            radius: 0.0,
            guess: 0.0,
            uncovered: total,
            probes: 0,
            reused_verdicts: 0,
        };
    }
    assert!(k > 0, "k must be positive when weight must be covered");

    let weights: Vec<u64> = points.iter().map(|p| p.weight).collect();
    let pts: Vec<P> = points.iter().map(|p| p.point.clone()).collect();
    let oracle = DistOracle::new(metric, &pts, n <= params.matrix_max_n);

    let candidates = candidate_radii(&oracle, params);
    debug_assert!(!candidates.is_empty());

    // Feasibility is monotone in r for the guarantee's purposes: the
    // largest candidate (≥ diameter) always succeeds with one center.
    let mut probes = 0usize;
    let mut probe = |i: usize| {
        probes += 1;
        disk_greedy(&oracle, &weights, k, z, candidates[i])
    };
    let best = match params.warm_guess {
        Some(g) => warm_search(&candidates, g, &mut probe),
        None => lowest_feasible(0, candidates.len() - 1, &mut probe),
    };
    let (idx, center_idx) = best.unwrap_or_else(|| {
        // The diameter guess must succeed; recompute defensively.
        let last = candidates.len() - 1;
        let c = disk_greedy(&oracle, &weights, k, z, candidates[last])
            .expect("diameter-radius guess must be feasible");
        (last, c)
    });
    let guess = candidates[idx];
    let centers: Vec<P> = center_idx
        .iter()
        .map(|&i| points[i].point.clone())
        .collect();
    // Tighten the certified 3·r̂ to the measured cost of this center set.
    let measured = cost_with_outliers(metric, points, &centers, z);
    let radius = measured.min(3.0 * guess);
    let uncovered = crate::cost::uncovered_weight(metric, points, &centers, radius);
    GreedySolution {
        centers,
        radius,
        guess,
        uncovered,
        probes,
        reused_verdicts: 0,
    }
}

/// Binary search for the lowest feasible candidate index in `[lo, hi]`,
/// assuming feasibility is monotone in the candidate radius.  Returns
/// the index and its centers, or `None` when every probed candidate in
/// the range is infeasible.
fn lowest_feasible(
    lo: usize,
    hi: usize,
    probe: &mut impl FnMut(usize) -> Option<Vec<usize>>,
) -> Option<(usize, Vec<usize>)> {
    let (mut lo, mut hi) = (lo, hi);
    let mut best: Option<(usize, Vec<usize>)> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        match probe(mid) {
            Some(centers) => {
                best = Some((mid, centers));
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            None => {
                lo = mid + 1;
            }
        }
    }
    best
}

/// The warm-started radius search: start at the candidate nearest the
/// hint and bracket outwards.  Under the monotone-feasibility assumption
/// this finds the same minimal feasible index as the cold bisection —
/// but when the hint is still right (the common republish-after-small-
/// change case) it costs 2 probes instead of `log₂ |candidates|`.
fn warm_search(
    candidates: &[f64],
    guess: f64,
    probe: &mut impl FnMut(usize) -> Option<Vec<usize>>,
) -> Option<(usize, Vec<usize>)> {
    let last = candidates.len() - 1;
    let start = candidates.partition_point(|&c| c < guess).min(last);
    match probe(start) {
        Some(centers) => {
            // Feasible at the hint: gallop downwards doubling the step
            // until an infeasible candidate brackets the boundary from
            // below, then bisect the (exponentially small) bracket.  An
            // exact hint exits after the first downward probe.
            let mut lowest = (start, centers);
            if start == 0 {
                return Some(lowest);
            }
            let mut step = 1usize;
            loop {
                let j = lowest.0.saturating_sub(step);
                match probe(j) {
                    Some(below) => {
                        lowest = (j, below);
                        if j == 0 {
                            return Some(lowest);
                        }
                        step = step.saturating_mul(2);
                    }
                    None => {
                        if j + 1 == lowest.0 {
                            return Some(lowest);
                        }
                        return Some(lowest_feasible(j + 1, lowest.0 - 1, probe).unwrap_or(lowest));
                    }
                }
            }
        }
        None => {
            // Infeasible at the hint: gallop upwards doubling the step,
            // then bisect the bracket between the highest infeasible and
            // the first feasible probe.
            let mut step = 1usize;
            let mut highest_infeasible = start;
            loop {
                let j = highest_infeasible.saturating_add(step).min(last);
                match probe(j) {
                    Some(centers) => {
                        if j == highest_infeasible + 1 {
                            return Some((j, centers));
                        }
                        return Some(
                            lowest_feasible(highest_infeasible + 1, j - 1, probe)
                                .unwrap_or((j, centers)),
                        );
                    }
                    None if j >= last => return None,
                    None => {
                        highest_infeasible = j;
                        step *= 2;
                    }
                }
            }
        }
    }
}

/// Distance oracle behind the greedy's hot loops: a full matrix (filled
/// row-by-row with `dist_many`) for small inputs, the batched
/// deferred-`sqrt` kernels on the raw points otherwise.
///
/// The two modes answer ball queries with the same point sets except at
/// sub-ulp ties (the deferred-`sqrt` contract of [`MetricSpace`]); within
/// one mode all queries are mutually consistent, which is what the
/// incremental gain maintenance in [`disk_greedy`] relies on.
struct DistOracle<'a, P, M> {
    metric: &'a M,
    pts: &'a [P],
    matrix: Option<Vec<f64>>,
    /// Columnar transpose of `pts` for the matrix-free mode: ball queries
    /// run the blocked SoA kernels (bit-identical to the AoS kernels in
    /// f64, per the `columns.rs` equivalence suite) instead of the
    /// strided AoS scans.  `None` in matrix mode or when the metric has
    /// no columnar kernels.
    cols: Option<ColumnSet>,
}

impl<'a, P, M: MetricSpace<P>> DistOracle<'a, P, M> {
    fn new(metric: &'a M, pts: &'a [P], use_matrix: bool) -> Self {
        Self::with_matrix(metric, pts, use_matrix, None)
    }

    /// Like [`DistOracle::new`], but reuses `prior` as the matrix when it
    /// matches `pts` in size.  The caller certifies that `prior` was
    /// computed on *bit-identical positions* (the delta solve's pure
    /// weight-bump path); a mismatched or absent prior rebuilds exactly
    /// as `new` does, so the oracle's answers never depend on it.
    fn with_matrix(metric: &'a M, pts: &'a [P], use_matrix: bool, prior: Option<Vec<f64>>) -> Self {
        let n = pts.len();
        let matrix = use_matrix.then(|| match prior {
            Some(m) if m.len() == n * n => m,
            _ => {
                let mut m = Vec::with_capacity(n * n);
                let mut row = Vec::new();
                for p in pts {
                    metric.dist_many(p, pts, &mut row);
                    m.extend_from_slice(&row);
                }
                m
            }
        });
        let cols = if matrix.is_none() {
            metric.build_columns(pts, Precision::F64)
        } else {
            None
        };
        DistOracle {
            metric,
            pts,
            matrix,
            cols,
        }
    }

    fn len(&self) -> usize {
        self.pts.len()
    }

    /// Hand the distance matrix (if any) back to the caller so a future
    /// pure weight-bump solve on the same positions can skip the
    /// `O(n²)` rebuild.
    fn into_matrix(self) -> Option<Vec<f64>> {
        self.matrix
    }

    /// Distances from point `i` to every point, as a slice (matrix row or
    /// freshly computed into `scratch`).
    fn row<'b>(&'b self, i: usize, scratch: &'b mut Vec<f64>) -> &'b [f64] {
        match (&self.matrix, &self.cols) {
            (Some(m), _) => {
                let n = self.pts.len();
                &m[i * n..(i + 1) * n]
            }
            (None, Some(cols)) => {
                self.metric.col_dist_many(cols, &self.pts[i], scratch);
                scratch
            }
            (None, None) => {
                self.metric.dist_many(&self.pts[i], self.pts, scratch);
                scratch
            }
        }
    }

    /// Total weight within distance `r` of point `i`.
    fn cover_weight(&self, i: usize, weights: &[u64], r: f64) -> u64 {
        match (&self.matrix, &self.cols) {
            (Some(m), _) => {
                let n = self.pts.len();
                let row = &m[i * n..(i + 1) * n];
                let mut total = 0u64;
                for (&d, &w) in row.iter().zip(weights) {
                    if d <= r {
                        total = total.saturating_add(w);
                    }
                }
                total
            }
            (None, Some(cols)) => self.metric.col_cover_weight(cols, &self.pts[i], weights, r),
            (None, None) => self.metric.cover_weight(&self.pts[i], self.pts, weights, r),
        }
    }

    /// Ascending indices of all points within distance `r` of point `i`.
    fn within_row(&self, i: usize, r: f64, out: &mut Vec<usize>) {
        match (&self.matrix, &self.cols) {
            (Some(m), _) => {
                let n = self.pts.len();
                out.clear();
                for (j, &d) in m[i * n..(i + 1) * n].iter().enumerate() {
                    if d <= r {
                        out.push(j);
                    }
                }
            }
            (None, Some(cols)) => self.metric.col_within_indices(cols, &self.pts[i], r, out),
            (None, None) => self.metric.within_indices(&self.pts[i], self.pts, r, out),
        }
    }
}

/// Candidate radii for the binary search, ascending, first element `0`.
fn candidate_radii<P, M: MetricSpace<P>>(
    oracle: &DistOracle<'_, P, M>,
    params: &GreedyParams,
) -> Vec<f64> {
    let n = oracle.len();
    let mut scratch = Vec::new();
    if n <= params.exact_candidates_max_n {
        let mut c = Vec::with_capacity(n * (n - 1) / 2 + 1);
        c.push(0.0);
        for i in 0..n {
            let row = oracle.row(i, &mut scratch);
            c.extend_from_slice(&row[i + 1..]);
        }
        c.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN distances"));
        c.dedup();
        c
    } else {
        // Upper bound on the diameter: 2 × the eccentricity of point 0.
        let ecc = oracle
            .row(0, &mut scratch)
            .iter()
            .fold(0.0f64, |m, &d| m.max(d));
        let hi = (2.0 * ecc).max(f64::MIN_POSITIVE);
        // Lower bound: smallest positive distance within a sample.  In
        // matrix mode the distances already sit in the matrix rows; the
        // matrix-free mode computes suffix rows against the sample prefix.
        let sample = 512.min(n);
        let mut lo = f64::INFINITY;
        let mut row = Vec::new();
        for i in 0..sample {
            let suffix: &[f64] = if oracle.matrix.is_some() {
                &oracle.row(i, &mut scratch)[i + 1..sample]
            } else {
                oracle
                    .metric
                    .dist_many(&oracle.pts[i], &oracle.pts[i + 1..sample], &mut row);
                &row
            };
            for &d in suffix {
                if d > 0.0 && d < lo {
                    lo = d;
                }
            }
        }
        if !lo.is_finite() || lo <= 0.0 {
            lo = hi * 1e-9;
        }
        lo = lo.min(hi);
        let step = params.geometric_step.max(1.0 + 1e-6);
        let mut c = vec![0.0, lo];
        let mut r = lo;
        while r < hi {
            r *= step;
            c.push(r.min(hi));
        }
        c
    }
}

/// One feasibility test of the Charikar greedy at radius guess `r`:
/// greedily pick up to `k` disk centers; return their indices if the
/// uncovered weight ends up ≤ `z`.
///
/// `O(n²)` total: gains are initialized with one batched ball query per
/// point and maintained incrementally as points get covered.
fn disk_greedy<P, M: MetricSpace<P>>(
    oracle: &DistOracle<'_, P, M>,
    weights: &[u64],
    k: usize,
    z: u64,
    r: f64,
) -> Option<Vec<usize>> {
    disk_greedy_recorded(oracle, weights, k, z, r).verdict()
}

/// Why one [`disk_greedy`] run stopped picking centers.  The delta
/// re-certification treats each case differently — see
/// [`SolveState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Termination {
    /// All `k` picks were made; the verdict is whatever the final
    /// uncovered weight says.
    Exhausted,
    /// Uncovered weight dropped to ≤ `z` before `k` picks (always
    /// feasible).
    Slack,
    /// Every remaining `r`-ball gain hit `0` before `k` picks (always
    /// infeasible: more centers cannot help).
    ZeroGain,
}

/// One center pick of a recorded [`disk_greedy`] run, with the margin
/// data the delta re-certification needs: a lower bound on the pick's
/// own gain and an upper bound on every competing gain at pick time.
/// Both degrade conservatively across reuse generations (the gain stays
/// the stale recorded value, the runner-up absorbs each epoch's new
/// mass), so a reused record only ever gets *harder* to re-certify —
/// never unsound.
#[derive(Debug, Clone)]
struct Pick {
    /// Point index of the pick, in the current summary's indexing.
    index: usize,
    /// Lower bound on the pick's uncovered-weight gain at pick time.
    gain: u64,
    /// Upper bound on every *other* point's gain at pick time.
    runner_up: u64,
}

/// Certified record of one [`disk_greedy`] probe: the full pick
/// sequence with margins, the final coverage set, the final uncovered
/// weight and the termination reason — everything needed to prove that
/// re-running the probe on a weight-grown summary would retrace the
/// identical picks and land on a known verdict.
#[derive(Debug, Clone)]
struct ProbeRecord {
    picks: Vec<Pick>,
    /// Final coverage flags, indexed like the summary the record was
    /// last certified against.
    covered: Vec<bool>,
    /// Final uncovered weight (exact — the delta path only runs when
    /// totals are overflow-free).
    uncovered: u64,
    term: Termination,
    /// Outlier budget the record was taken against (verdict = `uncovered
    /// ≤ z`).
    z: u64,
}

impl ProbeRecord {
    /// The probe's verdict in [`disk_greedy`]'s return convention.
    fn verdict(&self) -> Option<Vec<usize>> {
        (self.uncovered <= self.z).then(|| self.picks.iter().map(|p| p.index).collect())
    }
}

/// [`disk_greedy`] with certificate extraction: identical pick-by-pick
/// behaviour (same argmax, same tie-break, same break conditions), plus
/// a second scan per pick for the runner-up margin and the final
/// coverage state.
fn disk_greedy_recorded<P, M: MetricSpace<P>>(
    oracle: &DistOracle<'_, P, M>,
    weights: &[u64],
    k: usize,
    z: u64,
    r: f64,
) -> ProbeRecord {
    let n = weights.len();
    let mut covered = vec![false; n];
    let mut uncovered_total: u64 = weights.iter().fold(0u64, |a, &w| a.saturating_add(w));
    // gain[p] = uncovered weight within distance r of p.
    let mut gain: Vec<u64> = (0..n).map(|p| oracle.cover_weight(p, weights, r)).collect();
    let mut picks: Vec<Pick> = Vec::with_capacity(k);
    let mut ball = Vec::new();
    let mut shrink = Vec::new();
    let mut term = Termination::Exhausted;
    for _ in 0..k {
        if uncovered_total <= z {
            term = Termination::Slack;
            break;
        }
        let (best, &g) = gain
            .iter()
            .enumerate()
            .max_by_key(|&(_, g)| *g)
            .expect("non-empty gains");
        if g == 0 {
            // No r-ball covers any uncovered weight; more centers cannot help.
            term = Termination::ZeroGain;
            break;
        }
        let runner_up = gain
            .iter()
            .enumerate()
            .filter(|&(p, _)| p != best)
            .map(|(_, &g)| g)
            .max()
            .unwrap_or(0);
        picks.push(Pick {
            index: best,
            gain: g,
            runner_up,
        });
        oracle.within_row(best, 3.0 * r, &mut ball);
        for &q in &ball {
            if !covered[q] {
                covered[q] = true;
                uncovered_total -= weights[q];
                // q leaves every gain it contributed to.
                oracle.within_row(q, r, &mut shrink);
                for &p in &shrink {
                    gain[p] -= weights[q];
                }
            }
        }
    }
    ProbeRecord {
        picks,
        covered,
        uncovered: uncovered_total,
        term,
        z,
    }
}

/// Persistent state of the delta-aware solve ([`greedy_stateful`]): the
/// previous solve's summary, candidate radius ladder, per-probe
/// feasibility records (keyed by the candidate's `f64` bits, so they
/// survive ladder recomputation) and — when positions were unchanged —
/// the distance matrix.
///
/// The contract is *bit-identity by construction*: a stateful solve
/// answers each radius probe either by actually running `disk_greedy`
/// or by a cached record whose certificates prove `disk_greedy` would
/// retrace the identical pick sequence and verdict on the new summary.
/// The radius search itself is the very same `warm_search` /
/// `lowest_feasible` code the cold solve runs, so the settled guess,
/// centers, radius and uncovered weight are the cold solve's bits —
/// only the probe *cost* changes.
pub struct SolveState<P> {
    k: usize,
    z: u64,
    /// Ladder/matrix knobs the records were taken under; any change
    /// falls back to a cold solve (the warm hint is *not* part of the
    /// key — it only reorders probes).
    exact_candidates_max_n: usize,
    geometric_step_bits: u64,
    matrix_max_n: usize,
    points: Vec<P>,
    weights: Vec<u64>,
    candidates: Vec<f64>,
    records: BTreeMap<u64, ProbeRecord>,
    /// Distance matrix of `points` (when `n ≤ matrix_max_n`), handed
    /// back to the next pure weight-bump solve.
    matrix: Option<Vec<f64>>,
}

impl<P> SolveState<P> {
    /// Number of retained probe records (primarily for tests).
    pub fn records(&self) -> usize {
        self.records.len()
    }
}

/// How the new summary differs from [`SolveState::points`]: every old
/// representative reappears in order with equal-or-bumped weight, plus
/// zero or more added representatives.  Any other shape (removals,
/// weight decreases, reorders) fails the diff and the solve runs cold.
struct SummaryDelta {
    /// `(old index, weight increase)` for each weight-bumped survivor.
    bumped: Vec<(usize, u64)>,
    /// New-summary indices of added representatives.
    adds: Vec<usize>,
    /// Old-summary index → new-summary index for every survivor.
    old_to_new: Vec<usize>,
    /// Total new mass: Σ bumps + Σ added weights (the `Δ⁺` every
    /// certificate budgets against).
    new_mass: u64,
    /// No adds: positions are bit-identical, so the ladder and matrix
    /// carry over outright.
    pure_bump: bool,
}

/// Greedy ordered-subsequence match of the old summary inside the new
/// one.  Any valid decomposition is sound — the certificates reason
/// about weight multisets, not provenance — so the first match wins.
fn classify_delta<P: PartialEq>(
    st: &SolveState<P>,
    pts: &[P],
    weights: &[u64],
    k: usize,
    z: u64,
    params: &GreedyParams,
) -> Option<SummaryDelta> {
    if st.k != k
        || st.z != z
        || st.exact_candidates_max_n != params.exact_candidates_max_n
        || st.geometric_step_bits != params.geometric_step.to_bits()
        || st.matrix_max_n != params.matrix_max_n
    {
        return None;
    }
    let mut old_to_new = vec![0usize; st.points.len()];
    let mut bumped = Vec::new();
    let mut adds = Vec::new();
    let mut new_mass = 0u64;
    let mut i = 0usize;
    for (j, p) in pts.iter().enumerate() {
        if i < st.points.len() && st.points[i] == *p && weights[j] >= st.weights[i] {
            if weights[j] > st.weights[i] {
                let d = weights[j] - st.weights[i];
                bumped.push((i, d));
                new_mass = new_mass.checked_add(d)?;
            }
            old_to_new[i] = j;
            i += 1;
        } else {
            adds.push(j);
            new_mass = new_mass.checked_add(weights[j])?;
        }
    }
    if i < st.points.len() {
        // Some old representative vanished (or shrank, or moved out of
        // order): the delta can only *remove* certified coverage, which
        // no certificate survives.  Run cold.
        return None;
    }
    Some(SummaryDelta {
        pure_bump: adds.is_empty(),
        bumped,
        adds,
        old_to_new,
        new_mass,
    })
}

/// Re-certify one probe record against the delta, or drop it.
///
/// The certificates, each of which a cold `disk_greedy` on the new
/// summary provably satisfies when they all hold:
///
/// * **Pick margins** — every recorded pick's gain strictly exceeds its
///   recorded runner-up plus the whole new mass `Δ⁺`.  New gains only
///   grow, and by at most `Δ⁺`, so the pick stays the *unique* argmax at
///   its step (strictness makes the certificate tie-break- and
///   index-order-proof).
/// * **Added-rep containment** — every added representative's initial
///   gain (all mass uncovered) stays strictly below the smallest
///   recorded pick gain, so no added point can out-bid a pick at any
///   step.
/// * **Coverage accounting** — the new uncovered weight is computed
///   *exactly*: bumps on uncovered survivors plus added reps outside
///   every pick's `3r` ball (membership asked of the same oracle
///   `disk_greedy` would use, so boundary ties agree bit-for-bit).
/// * **Termination** — `Slack` records must still reach `uncovered ≤ z`
///   (else the new run would keep picking); `ZeroGain` records must see
///   zero new uncovered mass (else some gain became positive);
///   `Exhausted` records just take the recomputed verdict.
///
/// A surviving record keeps its stale pick gains as lower bounds and
/// absorbs `Δ⁺` (and the added reps' gains) into its runner-up upper
/// bounds, so chained reuse across epochs stays sound by induction.
fn update_record<P, M: MetricSpace<P>>(
    rec: &ProbeRecord,
    r: f64,
    delta: &SummaryDelta,
    oracle: &DistOracle<'_, P, M>,
    weights: &[u64],
    z: u64,
) -> Option<ProbeRecord> {
    // Pick margins under the whole new mass.
    for pick in &rec.picks {
        if pick.gain <= pick.runner_up.saturating_add(delta.new_mass) {
            return None;
        }
    }
    // Added-rep containment.
    let mut max_add_gain = 0u64;
    if !delta.adds.is_empty() {
        let min_gain = rec.picks.iter().map(|p| p.gain).min()?;
        for &a in &delta.adds {
            let g = oracle.cover_weight(a, weights, r);
            if g >= min_gain {
                return None;
            }
            max_add_gain = max_add_gain.max(g);
        }
    }
    // Exact coverage accounting for the new mass.
    let n_new = weights.len();
    let mut covered = vec![false; n_new];
    for (old_idx, &new_idx) in delta.old_to_new.iter().enumerate() {
        covered[new_idx] = rec.covered[old_idx];
    }
    let mut fresh_uncovered = 0u64;
    for &(old_idx, bump) in &delta.bumped {
        if !rec.covered[old_idx] {
            fresh_uncovered += bump;
        }
    }
    if !delta.adds.is_empty() {
        let mut ball = Vec::new();
        let mut in_ball = vec![false; n_new];
        for pick in &rec.picks {
            oracle.within_row(delta.old_to_new[pick.index], 3.0 * r, &mut ball);
            for &q in &ball {
                in_ball[q] = true;
            }
        }
        for &a in &delta.adds {
            if in_ball[a] {
                covered[a] = true;
            } else {
                fresh_uncovered += weights[a];
            }
        }
    }
    let uncovered = rec.uncovered + fresh_uncovered;
    match rec.term {
        Termination::Exhausted => {}
        Termination::Slack => {
            if uncovered > z {
                return None;
            }
        }
        Termination::ZeroGain => {
            if fresh_uncovered != 0 {
                return None;
            }
        }
    }
    let picks = rec
        .picks
        .iter()
        .map(|p| Pick {
            index: delta.old_to_new[p.index],
            gain: p.gain,
            runner_up: p.runner_up.saturating_add(delta.new_mass).max(max_add_gain),
        })
        .collect();
    Some(ProbeRecord {
        picks,
        covered,
        uncovered,
        term: rec.term,
        z,
    })
}

/// The delta-aware Charikar greedy: bit-identical to [`greedy_with`]
/// (same searches, same probe semantics, same assembly) but retaining a
/// [`SolveState`] across calls so a republish after a small summary
/// delta answers most — on the pure weight-bump steady state, *all* —
/// feasibility probes from re-certified records instead of `disk_greedy`
/// runs.
///
/// Pass `state = None` for the first call (a recording cold solve);
/// every call leaves the state ready for the next.  Any delta the
/// certificates cannot absorb — removals, weight decreases, `k`/`z`/
/// parameter changes, weight-total overflow — falls back to a recording
/// cold solve, so the result is *always* the cold solve's bits.
pub fn greedy_stateful<P, M>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
    params: &GreedyParams,
    state: &mut Option<SolveState<P>>,
) -> GreedySolution<P>
where
    P: Clone + PartialEq,
    M: MetricSpace<P>,
{
    let n = points.len();
    let Some(total) = points.iter().try_fold(0u64, |a, p| a.checked_add(p.weight)) else {
        // Saturated-weight regime: exact uncovered accounting (and thus
        // every certificate) is off the table.  Match the stateless
        // solve bit-for-bit and drop the state.
        *state = None;
        return greedy_with(metric, points, k, z, params);
    };
    if total <= z || n == 0 {
        *state = None;
        return GreedySolution {
            centers: Vec::new(),
            radius: 0.0,
            guess: 0.0,
            uncovered: total,
            probes: 0,
            reused_verdicts: 0,
        };
    }
    assert!(k > 0, "k must be positive when weight must be covered");

    let weights: Vec<u64> = points.iter().map(|p| p.weight).collect();
    let pts: Vec<P> = points.iter().map(|p| p.point.clone()).collect();
    let use_matrix = n <= params.matrix_max_n;

    let prior = state.take();
    let delta = prior
        .as_ref()
        .and_then(|st| classify_delta(st, &pts, &weights, k, z, params));

    // Oracle + ladder + surviving records for this epoch.
    let (oracle, candidates, mut records) = match (prior, delta) {
        (Some(mut st), Some(delta)) => {
            let oracle = if delta.pure_bump {
                // Positions are bit-identical: the stored matrix *is*
                // what a rebuild would produce.
                DistOracle::with_matrix(metric, &pts, use_matrix, st.matrix.take())
            } else {
                DistOracle::new(metric, &pts, use_matrix)
            };
            let candidates = if delta.pure_bump {
                // Same positions ⇒ same ladder, carried over outright.
                std::mem::take(&mut st.candidates)
            } else {
                candidate_radii(&oracle, params)
            };
            let mut records = BTreeMap::new();
            for (key, rec) in &st.records {
                let r = f64::from_bits(*key);
                if let Some(updated) = update_record(rec, r, &delta, &oracle, &weights, z) {
                    records.insert(*key, updated);
                }
            }
            (oracle, candidates, records)
        }
        _ => {
            // Cold (but recording) solve: first call, or a delta the
            // certificates cannot absorb.
            let oracle = DistOracle::new(metric, &pts, use_matrix);
            let candidates = candidate_radii(&oracle, params);
            (oracle, candidates, BTreeMap::new())
        }
    };
    debug_assert!(!candidates.is_empty());

    let mut probes = 0usize;
    let mut reused = 0usize;
    {
        let mut probe = |i: usize| {
            let key = candidates[i].to_bits();
            if let Some(rec) = records.get(&key) {
                reused += 1;
                return rec.verdict();
            }
            probes += 1;
            let rec = disk_greedy_recorded(&oracle, &weights, k, z, candidates[i]);
            let verdict = rec.verdict();
            records.insert(key, rec);
            verdict
        };
        let best = match params.warm_guess {
            Some(g) => warm_search(&candidates, g, &mut probe),
            None => lowest_feasible(0, candidates.len() - 1, &mut probe),
        };
        let (idx, center_idx) = best.unwrap_or_else(|| {
            // The diameter guess must succeed; recompute defensively
            // (answered from the cache when certified, like any probe —
            // but uncounted, matching `greedy_with`'s accounting).
            let last = candidates.len() - 1;
            let key = candidates[last].to_bits();
            let c = records
                .get(&key)
                .map(|rec| rec.verdict())
                .unwrap_or_else(|| {
                    let rec = disk_greedy_recorded(&oracle, &weights, k, z, candidates[last]);
                    let verdict = rec.verdict();
                    records.insert(key, rec);
                    verdict
                })
                .expect("diameter-radius guess must be feasible");
            (last, c)
        });
        let guess = candidates[idx];
        let centers: Vec<P> = center_idx
            .iter()
            .map(|&i| points[i].point.clone())
            .collect();
        // Tighten the certified 3·r̂ to the measured cost of this center set.
        let measured = cost_with_outliers(metric, points, &centers, z);
        let radius = measured.min(3.0 * guess);
        let uncovered = crate::cost::uncovered_weight(metric, points, &centers, radius);

        let matrix = oracle.into_matrix();
        *state = Some(SolveState {
            k,
            z,
            exact_candidates_max_n: params.exact_candidates_max_n,
            geometric_step_bits: params.geometric_step.to_bits(),
            matrix_max_n: params.matrix_max_n,
            points: pts,
            weights,
            candidates,
            records,
            matrix,
        });
        GreedySolution {
            centers,
            radius,
            guess,
            uncovered,
            probes,
            reused_verdicts: reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::{unit_weighted, L2};

    /// Two tight clusters plus two far outliers.
    fn instance() -> Vec<Weighted<[f64; 2]>> {
        let mut raw = vec![];
        for i in 0..10 {
            raw.push([i as f64 * 0.1, 0.0]);
            raw.push([100.0 + i as f64 * 0.1, 0.0]);
        }
        raw.push([1000.0, 0.0]);
        raw.push([-1000.0, 0.0]);
        unit_weighted(&raw)
    }

    #[test]
    fn respects_outlier_budget() {
        let pts = instance();
        let sol = greedy(&L2, &pts, 2, 2);
        assert!(sol.uncovered <= 2);
        // With the two outliers excluded, each cluster has diameter 0.9.
        assert!(sol.radius <= 3.0 * 0.9 + 1e-9, "radius {}", sol.radius);
        assert_eq!(sol.centers.len(), 2);
    }

    #[test]
    fn without_budget_must_cover_outliers() {
        let pts = instance();
        let sol = greedy(&L2, &pts, 2, 0);
        // Any 2-center solution covering the ±1000 points has radius ≥ ~500.
        assert!(sol.radius >= 500.0, "radius {}", sol.radius);
        assert_eq!(sol.uncovered, 0);
    }

    #[test]
    fn weighted_outliers() {
        let mut pts = instance();
        // Make one "outlier" too heavy to discard.
        pts[20].weight = 5; // the [1000, 0] point
        let sol = greedy(&L2, &pts, 2, 2);
        // Covering the weight-5 point costs one center, so the two clusters
        // share the other: opt ≈ 101, and uncovered ≤ 2 forces coverage of
        // the heavy point.
        assert!(sol.uncovered <= 2);
        assert!(sol.radius >= 99.0, "radius {}", sol.radius);
        assert!(sol.radius <= 3.03 * 101.0, "radius {}", sol.radius);
    }

    #[test]
    fn all_points_outliers() {
        let pts = unit_weighted(&[[0.0, 0.0], [1.0, 1.0]]);
        let sol = greedy(&L2, &pts, 3, 2);
        assert_eq!(sol.radius, 0.0);
        assert!(sol.centers.is_empty());
    }

    #[test]
    fn duplicates_and_k_ge_distinct() {
        let pts = unit_weighted(&[[0.0, 0.0], [0.0, 0.0], [5.0, 0.0]]);
        let sol = greedy(&L2, &pts, 2, 0);
        assert_eq!(sol.radius, 0.0);
        assert!(sol.uncovered == 0);
    }

    #[test]
    fn three_approx_vs_exact_small() {
        // 3 clusters, k=3, z=1; opt is the in-cluster radius.
        let raw = vec![
            [0.0, 0.0],
            [1.0, 0.0],
            [50.0, 0.0],
            [51.0, 0.0],
            [100.0, 0.0],
            [101.0, 0.0],
            [500.0, 0.0], // outlier
        ];
        let pts = unit_weighted(&raw);
        let sol = greedy(&L2, &pts, 3, 1);
        // opt = 0.5 with centers anywhere, 1.0 with centers in P.
        assert!(sol.radius <= 3.0, "radius {}", sol.radius);
        assert!(sol.uncovered <= 1);
    }

    /// Exhaustive feasibility sweep over the exact candidate set: returns
    /// `Some(boundary)` when feasibility is genuinely monotone (a prefix
    /// of infeasible candidates followed by a feasible suffix), `None`
    /// when the instance has feasible "pockets".  Warm and cold searches
    /// are guaranteed to agree exactly on the monotone instances — the
    /// same assumption the cold bisection itself already leans on.
    fn monotone_boundary(pts: &[Weighted<[f64; 2]>], k: usize, z: u64) -> Option<usize> {
        let weights: Vec<u64> = pts.iter().map(|p| p.weight).collect();
        let raw: Vec<[f64; 2]> = pts.iter().map(|p| p.point).collect();
        let oracle = DistOracle::new(&L2, &raw, true);
        let candidates = candidate_radii(&oracle, &GreedyParams::default());
        let feas: Vec<bool> = (0..candidates.len())
            .map(|i| disk_greedy(&oracle, &weights, k, z, candidates[i]).is_some())
            .collect();
        let boundary = feas.iter().position(|&f| f)?;
        feas[boundary..].iter().all(|&f| f).then_some(boundary)
    }

    #[test]
    fn warm_start_matches_cold_on_monotone_instances_for_any_hint() {
        // On an instance whose feasibility really is monotone in the
        // radius (verified exhaustively, not assumed), the hint only
        // changes the probe order: centers, radius, guess and uncovered
        // weight must be bit-identical to the cold search for hints
        // anywhere in, below or above the candidate range.
        let pts = instance();
        let mut monotone_cases = 0;
        for (k, z) in [(2usize, 2u64), (2, 0), (3, 1), (1, 21)] {
            let Some(_) = monotone_boundary(&pts, k, z) else {
                continue;
            };
            monotone_cases += 1;
            let cold = greedy(&L2, &pts, k, z);
            for hint in [
                0.0,
                1e-9,
                cold.guess * 0.5,
                cold.guess,
                cold.guess * 1.5,
                2000.0,
                1e12,
            ] {
                let warm = greedy_with(&L2, &pts, k, z, &GreedyParams::warm(hint));
                assert_eq!(warm.centers, cold.centers, "k={k} z={z} hint={hint}");
                assert_eq!(warm.radius.to_bits(), cold.radius.to_bits());
                assert_eq!(warm.guess.to_bits(), cold.guess.to_bits());
                assert_eq!(warm.uncovered, cold.uncovered);
            }
        }
        assert!(monotone_cases >= 2, "sweep found too few monotone cases");
    }

    #[test]
    fn warm_start_always_settles_on_a_certified_boundary() {
        // Even on non-monotone instances (feasible pockets at small
        // radii), any warm result is a feasibility *boundary* — feasible
        // at the settled guess with an infeasible predecessor — which is
        // exactly what certifies `guess ≤ opt` and thus the 3-approx
        // (any radius ≥ opt is feasible, so an infeasible predecessor
        // lies below opt, and opt itself is among the candidates).
        let pts = instance();
        for (k, z) in [(2usize, 2u64), (2, 0), (3, 1)] {
            let cold = greedy(&L2, &pts, k, z);
            for hint in [0.0, cold.guess * 0.3, cold.guess, cold.guess * 3.0, 1e9] {
                let warm = greedy_with(&L2, &pts, k, z, &GreedyParams::warm(hint));
                assert!(warm.uncovered <= z, "k={k} z={z} hint={hint}");
                assert!(
                    warm.radius <= 3.0 * warm.guess + 1e-9,
                    "k={k} z={z} hint={hint}: radius {} vs guess {}",
                    warm.radius,
                    warm.guess
                );
                // Same certified upper bound as the cold solution.
                assert!(warm.guess <= cold.guess + 1e-9 || warm.radius <= cold.radius + 1e-9);
            }
        }
    }

    #[test]
    fn exact_hint_costs_two_probes() {
        let pts = instance();
        let cold = greedy(&L2, &pts, 2, 2);
        // The candidate set is quadratic in n, so the cold bisection pays
        // a multi-probe bisection here.
        assert!(cold.probes > 4, "cold probes = {}", cold.probes);
        let warm = greedy_with(&L2, &pts, 2, 2, &GreedyParams::warm(cold.guess));
        assert_eq!(warm.guess.to_bits(), cold.guess.to_bits());
        assert_eq!(warm.probes, 2, "re-probe the hint and its predecessor");
        // A slightly stale hint still brackets in O(log distance) probes,
        // well under the cold bisection over the full candidate set.
        let near = greedy_with(&L2, &pts, 2, 2, &GreedyParams::warm(cold.guess * 1.001));
        assert_eq!(near.guess.to_bits(), cold.guess.to_bits());
        assert!(near.probes <= 6, "near-hint probes = {}", near.probes);
    }

    #[test]
    fn warm_start_on_the_geometric_grid_matches_cold() {
        let pts = instance();
        let geo = GreedyParams {
            exact_candidates_max_n: 0,
            matrix_max_n: 0,
            ..Default::default()
        };
        let cold = greedy_with(&L2, &pts, 2, 2, &geo);
        let warm = greedy_with(
            &L2,
            &pts,
            2,
            2,
            &GreedyParams {
                warm_guess: Some(cold.guess),
                ..geo.clone()
            },
        );
        assert_eq!(warm.centers, cold.centers);
        assert_eq!(warm.radius.to_bits(), cold.radius.to_bits());
        assert!(warm.probes <= 2);
    }

    /// Four well-separated single-point sites with sharply distinct
    /// masses: every ball gain is a sum of distinct weights, so pick
    /// margins dwarf small weight bumps and verdicts re-certify.  (Ties
    /// — e.g. co-located points with identical balls — deliberately
    /// fail the strict margin certificate and re-run.)
    fn delta_instance() -> Vec<Weighted<[f64; 2]>> {
        [(0.0, 400u64), (100.0, 150), (200.0, 60), (300.0, 30)]
            .iter()
            .map(|&(x, weight)| Weighted {
                point: [x, 0.0],
                weight,
            })
            .collect()
    }

    fn assert_bit_identical(
        sol: &GreedySolution<[f64; 2]>,
        cold: &GreedySolution<[f64; 2]>,
        what: &str,
    ) {
        assert_eq!(sol.centers, cold.centers, "{what}: centers");
        assert_eq!(
            sol.radius.to_bits(),
            cold.radius.to_bits(),
            "{what}: radius"
        );
        assert_eq!(sol.guess.to_bits(), cold.guess.to_bits(), "{what}: guess");
        assert_eq!(sol.uncovered, cold.uncovered, "{what}: uncovered");
        // The stateful search retraces the cold search probe-for-probe:
        // every probe is either answered from a certified record or run.
        assert_eq!(
            sol.probes + sol.reused_verdicts,
            cold.probes,
            "{what}: probe accounting"
        );
    }

    #[test]
    fn stateful_matches_stateless_across_deltas() {
        let (k, z) = (3usize, 35u64);
        let mut pts = delta_instance();
        let mut state = None;
        let first = greedy_stateful(&L2, &pts, k, z, &GreedyParams::default(), &mut state);
        let cold = greedy_with(&L2, &pts, k, z, &GreedyParams::default());
        assert_bit_identical(&first, &cold, "first (recording cold)");
        assert_eq!(first.reused_verdicts, 0);

        // Pure weight bump: every probe should come from the cache.
        pts[0].weight += 1;
        let warm = greedy_stateful(&L2, &pts, k, z, &GreedyParams::default(), &mut state);
        let cold = greedy_with(&L2, &pts, k, z, &GreedyParams::default());
        assert_bit_identical(&warm, &cold, "pure bump");
        assert!(warm.reused_verdicts > 0, "bump must reuse verdicts");
        assert_eq!(warm.probes, 0, "unit bump should re-certify every probe");

        // Added representative: ladder recomputes, verdicts still reusable
        // when the addition is light.
        pts.push(Weighted {
            point: [300.9, 0.0],
            weight: 2,
        });
        let added = greedy_stateful(&L2, &pts, k, z, &GreedyParams::default(), &mut state);
        let cold = greedy_with(&L2, &pts, k, z, &GreedyParams::default());
        assert_bit_identical(&added, &cold, "added rep");

        // Removal: no certificate survives — the solve falls back cold and
        // still matches bit-for-bit.
        pts.remove(0);
        let removed = greedy_stateful(&L2, &pts, k, z, &GreedyParams::default(), &mut state);
        let cold = greedy_with(&L2, &pts, k, z, &GreedyParams::default());
        assert_bit_identical(&removed, &cold, "removal (cold fallback)");
        assert_eq!(removed.reused_verdicts, 0);
    }

    #[test]
    fn stateful_with_warm_hint_stays_bit_identical() {
        let (k, z) = (3usize, 35u64);
        let mut pts = delta_instance();
        let mut state = None;
        let first = greedy_stateful(&L2, &pts, k, z, &GreedyParams::default(), &mut state);
        pts[3].weight += 2;
        let params = GreedyParams::warm(first.guess);
        let warm = greedy_stateful(&L2, &pts, k, z, &params, &mut state);
        let cold = greedy_with(&L2, &pts, k, z, &params);
        assert_bit_identical(&warm, &cold, "warm-hint bump");
        assert!(warm.reused_verdicts > 0);
        assert_eq!(warm.probes, 0);
    }

    #[test]
    fn stateful_fuzz_bit_identical_to_stateless() {
        // 3 seeds × 25 epochs of random bumps / adds / removals / idle
        // republishes, on both the exact-matrix and geometric-columnar
        // configurations: the stateful solve must reproduce the
        // stateless solve's bits at every epoch.
        for seed in 0u64..3 {
            let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (seed.wrapping_mul(0xD134_2543_DE82_EF95));
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let base = if seed % 2 == 0 {
                GreedyParams::default()
            } else {
                GreedyParams {
                    exact_candidates_max_n: 0,
                    matrix_max_n: 0,
                    ..Default::default()
                }
            };
            let (k, z) = (3usize, 35u64);
            let mut pts = delta_instance();
            let mut state = None;
            let mut prev_guess: Option<f64> = None;
            for epoch in 0..25 {
                match next() % 4 {
                    0 => {
                        let i = (next() as usize) % pts.len();
                        pts[i].weight += 1 + next() % 5;
                    }
                    1 => {
                        let x = (next() % 400) as f64;
                        pts.push(Weighted {
                            point: [x, 1.0],
                            weight: 1 + next() % 3,
                        });
                    }
                    2 if pts.len() > 3 => {
                        let i = (next() as usize) % pts.len();
                        pts.remove(i);
                    }
                    _ => {} // idle republish: identical summary
                }
                let params = match prev_guess {
                    Some(g) => GreedyParams {
                        warm_guess: Some(g),
                        ..base.clone()
                    },
                    None => base.clone(),
                };
                let sol = greedy_stateful(&L2, &pts, k, z, &params, &mut state);
                let cold = greedy_with(&L2, &pts, k, z, &params);
                assert_bit_identical(&sol, &cold, &format!("seed {seed} epoch {epoch}"));
                prev_guess = Some(sol.guess);
            }
        }
    }

    #[test]
    fn geometric_path_matches_exact_path_shape() {
        let pts = instance();
        let exact = greedy_with(
            &L2,
            &pts,
            2,
            2,
            &GreedyParams {
                exact_candidates_max_n: 1000,
                ..Default::default()
            },
        );
        let geo = greedy_with(
            &L2,
            &pts,
            2,
            2,
            &GreedyParams {
                exact_candidates_max_n: 0,
                matrix_max_n: 0,
                ..Default::default()
            },
        );
        assert!(geo.uncovered <= 2);
        // Both certify a 3(1+η)-approximation of the same opt.
        assert!(geo.radius <= 3.03 * exact.radius.max(0.45) + 1e-9);
    }
}
