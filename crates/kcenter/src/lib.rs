//! Offline algorithms for the (weighted) k-center problem with outliers.
//!
//! These are the sequential substrates the paper builds on:
//!
//! * [`charikar::greedy`] — the 3-approximation of Charikar, Khuller, Mount
//!   and Narasimhan (SODA 2001) for k-center with outliers, in its weighted
//!   form.  Every mini-ball covering construction (Algorithm 1 of the
//!   paper) starts by calling it, and Lemma 8 relies on `opt ≤ r ≤ 3·opt`
//!   for the radius `r` it reports.
//! * [`gonzalez::farthest_first`] — the classic 2-approximation for plain
//!   k-center, used by the Ceccarello-et-al.-style baseline.
//! * [`exact::exact_discrete`] — exhaustive optimal solver over a candidate
//!   center set, for ground truth in tests and quality experiments.
//! * [`cost`] — clustering-cost evaluation: the smallest radius covering
//!   all but outlier-weight ≤ `z` with the given centers.

#![warn(missing_docs)]

pub mod charikar;
pub mod cost;
pub mod exact;
pub mod gonzalez;

pub use charikar::{
    greedy, greedy_stateful, greedy_with, GreedyParams, GreedySolution, SolveState,
};
pub use cost::{cost_with_outliers, uncovered_weight};
pub use exact::exact_discrete;
pub use gonzalez::farthest_first;
