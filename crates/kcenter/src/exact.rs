//! Exhaustive optimal solver for k-center with outliers over a finite
//! candidate-center set.
//!
//! The problem is NP-hard, so exact answers are only practical on small
//! instances; tests and quality experiments use this as ground truth when
//! validating the `(1±ε)` coreset guarantees (Definition 1).  Restricting
//! centers to a candidate set `C` is the standard discrete formulation;
//! with `C = P` the optimum is within a factor 2 of the unrestricted one,
//! and the coreset inequalities hold verbatim for any fixed `C` (see
//! `DESIGN.md`, substitution #6).

use kcz_metric::{MetricSpace, Weighted};

use crate::cost::cost_with_outliers;

/// An optimal discrete solution.
#[derive(Debug, Clone)]
pub struct ExactSolution<P> {
    /// Optimal centers (subset of the candidates, size ≤ k).
    pub centers: Vec<P>,
    /// Optimal radius.
    pub radius: f64,
}

/// Work bound: refuse instances with more than this many center subsets.
const MAX_SUBSETS: u128 = 3_000_000;

fn n_choose_k(n: usize, k: usize) -> u128 {
    let mut r: u128 = 1;
    for i in 0..k.min(n) {
        r = r.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if r > MAX_SUBSETS {
            return r;
        }
    }
    r
}

/// Exhaustively finds the optimal ≤k centers among `candidates` for the
/// weighted k-center problem with outlier budget `z` on `points`.
///
/// Panics when the search space exceeds an internal work bound
/// (≈ 3·10⁶ subsets) — this solver is for ground truth on small instances.
pub fn exact_discrete<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
    candidates: &[P],
) -> ExactSolution<P> {
    let total: u64 = points.iter().fold(0u64, |a, p| a.saturating_add(p.weight));
    if total <= z || points.is_empty() {
        return ExactSolution {
            centers: Vec::new(),
            radius: 0.0,
        };
    }
    assert!(k > 0, "k must be positive when weight must be covered");
    assert!(!candidates.is_empty(), "need at least one candidate center");
    let k = k.min(candidates.len());
    assert!(
        n_choose_k(candidates.len(), k) <= MAX_SUBSETS,
        "exact solver work bound exceeded: C({}, {}) subsets",
        candidates.len(),
        k
    );

    let mut best_radius = f64::INFINITY;
    let mut best: Vec<usize> = Vec::new();
    let mut subset: Vec<usize> = (0..k).collect();
    loop {
        let centers: Vec<P> = subset.iter().map(|&i| candidates[i].clone()).collect();
        let r = cost_with_outliers(metric, points, &centers, z);
        if r < best_radius {
            best_radius = r;
            best = subset.clone();
        }
        // Next k-combination of 0..candidates.len() in lexicographic order.
        let n = candidates.len();
        let mut i = k;
        loop {
            if i == 0 {
                return ExactSolution {
                    centers: best.iter().map(|&i| candidates[i].clone()).collect(),
                    radius: best_radius,
                };
            }
            i -= 1;
            if subset[i] != i + n - k {
                subset[i] += 1;
                for j in (i + 1)..k {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charikar::greedy;
    use kcz_metric::{unit_weighted, L2};

    #[test]
    fn finds_obvious_optimum() {
        let raw = vec![
            [0.0, 0.0],
            [2.0, 0.0],
            [10.0, 0.0],
            [12.0, 0.0],
            [100.0, 0.0],
        ];
        let pts = unit_weighted(&raw);
        let sol = exact_discrete(&L2, &pts, 2, 1, &raw);
        // Discard [100,0] as the outlier; cover each pair from one endpoint.
        assert_eq!(sol.radius, 2.0);
        assert_eq!(sol.centers.len(), 2);
    }

    #[test]
    fn zero_radius_when_k_covers_everything() {
        let raw = vec![[0.0, 0.0], [5.0, 5.0]];
        let pts = unit_weighted(&raw);
        let sol = exact_discrete(&L2, &pts, 2, 0, &raw);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn whole_weight_in_budget() {
        let raw = vec![[0.0, 0.0], [5.0, 5.0]];
        let pts = unit_weighted(&raw);
        let sol = exact_discrete(&L2, &pts, 1, 2, &raw);
        assert_eq!(sol.radius, 0.0);
        assert!(sol.centers.is_empty());
    }

    #[test]
    fn weighted_budget_respected() {
        let raw = vec![[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]];
        let mut pts = unit_weighted(&raw);
        pts[0].weight = 3;
        pts[1].weight = 3;
        // Budget 2 discards only the weight-1 point at [20,0]; the two
        // weight-3 points must share one center at distance 10.
        let sol = exact_discrete(&L2, &pts, 1, 2, &raw);
        assert_eq!(sol.radius, 10.0);
        // Budget 4 additionally discards one weight-3 point.
        let sol = exact_discrete(&L2, &pts, 1, 4, &raw);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn greedy_is_within_three_of_exact() {
        // Random-ish small instance, cross-validate the 3-approximation.
        let raw: Vec<[f64; 2]> = (0..14)
            .map(|i| {
                let x = (i * 37 % 100) as f64;
                let y = (i * 61 % 100) as f64;
                [x, y]
            })
            .collect();
        let pts = unit_weighted(&raw);
        for (k, z) in [(1usize, 0u64), (2, 1), (3, 2), (2, 3)] {
            let ex = exact_discrete(&L2, &pts, k, z, &raw);
            let gr = greedy(&L2, &pts, k, z);
            assert!(
                gr.radius <= 3.0 * ex.radius + 1e-9,
                "k={k} z={z}: greedy {} vs exact {}",
                gr.radius,
                ex.radius
            );
            assert!(gr.radius >= ex.radius - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "work bound")]
    fn refuses_huge_search() {
        let raw: Vec<[f64; 2]> = (0..200).map(|i| [i as f64, 0.0]).collect();
        let pts = unit_weighted(&raw);
        let _ = exact_discrete(&L2, &pts, 8, 0, &raw);
    }
}
