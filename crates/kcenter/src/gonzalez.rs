//! Gonzalez's farthest-first traversal: the classic 2-approximation for
//! k-center *without* outliers (Gonzalez 1985, reference \[26\] of the paper).
//!
//! The Ceccarello-et-al. MPC/streaming baselines select `k + z` (or more)
//! farthest-first centers locally, which is why this lives in the solver
//! substrate even though the paper's own algorithms never call it.

use kcz_metric::{MetricSpace, Weighted};

/// Result of a farthest-first traversal.
#[derive(Debug, Clone)]
pub struct FarthestFirst<P> {
    /// Chosen centers, in selection order (indices into the input follow
    /// the same order in `center_indices`).
    pub centers: Vec<P>,
    /// Indices of the chosen centers in the input slice.
    pub center_indices: Vec<usize>,
    /// Covering radius: max over points of the distance to the nearest
    /// center.  At most `2·opt_k` for the no-outlier problem.
    pub radius: f64,
}

/// Runs farthest-first traversal selecting up to `k` centers, starting from
/// `start` (an index into `points`).  Weights are ignored — they do not
/// affect the plain k-center objective.
///
/// Returns an empty solution for an empty input.  `O(n·k)` time.
pub fn farthest_first<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    start: usize,
) -> FarthestFirst<P> {
    if points.is_empty() || k == 0 {
        return FarthestFirst {
            centers: Vec::new(),
            center_indices: Vec::new(),
            radius: 0.0,
        };
    }
    let start = start % points.len();
    let pts: Vec<P> = points.iter().map(|wp| wp.point.clone()).collect();
    let mut centers = Vec::with_capacity(k.min(points.len()));
    let mut center_indices = Vec::with_capacity(k.min(points.len()));
    let mut nearest = vec![f64::INFINITY; points.len()];
    let mut row = Vec::new();

    let mut next = start;
    loop {
        let c = pts[next].clone();
        center_indices.push(next);
        // One batched one-to-many kernel call per selected center.
        metric.dist_many(&c, &pts, &mut row);
        for (slot, &d) in nearest.iter_mut().zip(&row) {
            if d < *slot {
                *slot = d;
            }
        }
        centers.push(c);
        if centers.len() >= k.min(points.len()) {
            break;
        }
        // Farthest remaining point becomes the next center.
        let (idx, _) = nearest
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-NaN distances"))
            .expect("non-empty input");
        next = idx;
    }
    let radius = nearest.iter().copied().fold(0.0f64, f64::max);
    FarthestFirst {
        centers,
        center_indices,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::{unit_weighted, L2};

    #[test]
    fn covers_three_obvious_clusters() {
        let raw = vec![
            [0.0, 0.0],
            [0.1, 0.0],
            [10.0, 0.0],
            [10.1, 0.0],
            [20.0, 0.0],
            [20.1, 0.0],
        ];
        let pts = unit_weighted(&raw);
        let ff = farthest_first(&L2, &pts, 3, 0);
        assert_eq!(ff.centers.len(), 3);
        assert!(ff.radius <= 0.1 + 1e-12, "radius {}", ff.radius);
    }

    #[test]
    fn radius_is_two_approx() {
        // Single cluster, k = 1: radius at most the diameter (2·opt).
        let raw: Vec<[f64; 2]> = (0..20).map(|i| [i as f64, 0.0]).collect();
        let pts = unit_weighted(&raw);
        let ff = farthest_first(&L2, &pts, 1, 0);
        assert!(ff.radius <= 19.0);
        // opt for k=1 centered anywhere = 9.5; centers restricted to P give 10.
        assert!(ff.radius >= 9.5);
    }

    #[test]
    fn k_larger_than_n() {
        let pts = unit_weighted(&[[0.0, 0.0], [1.0, 0.0]]);
        let ff = farthest_first(&L2, &pts, 10, 0);
        assert_eq!(ff.centers.len(), 2);
        assert_eq!(ff.radius, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let pts: Vec<Weighted<[f64; 2]>> = vec![];
        let ff = farthest_first(&L2, &pts, 3, 0);
        assert!(ff.centers.is_empty());
        let pts = unit_weighted(&[[0.0, 0.0]]);
        let ff = farthest_first(&L2, &pts, 0, 0);
        assert!(ff.centers.is_empty());
    }
}
