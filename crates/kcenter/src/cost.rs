//! Clustering-cost evaluation for weighted point sets with outliers.

use kcz_metric::{MetricSpace, Weighted};

/// Total weight of points farther than `r` from every center.
///
/// This is the outlier weight of the solution `(centers, r)`; the solution
/// is feasible for the k-center problem with `z` outliers iff the result is
/// at most `z`.
///
/// Classification is boundary-exact: callers routinely pass a radius that
/// *is* some point's computed distance (e.g. the output of
/// [`cost_with_outliers`]), so the test compares the batched
/// [`MetricSpace::nearest`] distance — which equals the scalar `dist`
/// exactly — rather than a deferred-`sqrt` ball predicate.
pub fn uncovered_weight<P, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    centers: &[P],
    r: f64,
) -> u64 {
    let mut total = 0u64;
    for wp in points {
        let covered = metric
            .nearest(&wp.point, centers)
            .is_some_and(|(_, d)| d <= r);
        if !covered {
            total = total.saturating_add(wp.weight);
        }
    }
    total
}

/// The smallest radius `r` such that balls of radius `r` around `centers`
/// cover all of `points` except for total weight at most `z`.
///
/// Runs in `O(n·k + n log n)`.  Returns `0.0` when the point set is empty
/// or its entire weight fits in the outlier budget.  Panics if `centers`
/// is empty while some weight must be covered.
pub fn cost_with_outliers<P, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    centers: &[P],
    z: u64,
) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let total: u64 = points.iter().fold(0u64, |a, p| a.saturating_add(p.weight));
    if total <= z {
        return 0.0;
    }
    assert!(
        !centers.is_empty(),
        "no centers given but {} weight must be covered",
        total - z
    );
    // Distance of every point to its nearest center (batched kernel; the
    // returned distance equals the scalar `dist` exactly), paired with
    // weight.
    let mut dists: Vec<(f64, u64)> = points
        .iter()
        .map(|wp| {
            let (_, d) = metric
                .nearest(&wp.point, centers)
                .expect("centers checked non-empty above");
            (d, wp.weight)
        })
        .collect();
    // Walk from the farthest point inward, spending the outlier budget on
    // the farthest points; the radius is the distance of the first point
    // that no longer fits in the budget.
    dists.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("non-NaN distances"));
    let mut budget = z;
    for &(d, w) in &dists {
        if w > budget {
            return d;
        }
        budget -= w;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::{unit_weighted, L2};

    fn pts() -> Vec<Weighted<[f64; 2]>> {
        unit_weighted(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [10.0, 0.0],
            [11.0, 0.0],
            [100.0, 0.0],
        ])
    }

    #[test]
    fn cost_no_outliers() {
        let p = pts();
        let centers = vec![[1.0, 0.0], [10.5, 0.0]];
        // Farthest point is [100,0] at distance 89.5 from the second center.
        assert_eq!(cost_with_outliers(&L2, &p, &centers, 0), 89.5);
    }

    #[test]
    fn cost_with_budget() {
        let p = pts();
        let centers = vec![[1.0, 0.0], [10.5, 0.0]];
        // One outlier removes [100,0]; radius shrinks to 1 ([2,0] or [0,0]).
        assert_eq!(cost_with_outliers(&L2, &p, &centers, 1), 1.0);
    }

    #[test]
    fn cost_weighted_budget() {
        let mut p = pts();
        p[5].weight = 3; // the far point now weighs 3
        let centers = vec![[1.0, 0.0], [10.5, 0.0]];
        // z = 2 cannot exclude a weight-3 point.
        assert_eq!(cost_with_outliers(&L2, &p, &centers, 2), 89.5);
        assert_eq!(cost_with_outliers(&L2, &p, &centers, 3), 1.0);
    }

    #[test]
    fn whole_set_can_be_outliers() {
        let p = pts();
        assert_eq!(cost_with_outliers(&L2, &p, &[], 6), 0.0);
        assert_eq!(cost_with_outliers::<[f64; 2], _>(&L2, &[], &[], 0), 0.0);
    }

    #[test]
    fn uncovered_counts_weights() {
        let mut p = pts();
        p[0].weight = 5;
        let centers = vec![[10.5, 0.0]];
        // Within radius 1: [10,0] and [11,0]. Uncovered: 5+1+1+1 = 8.
        assert_eq!(uncovered_weight(&L2, &p, &centers, 1.0), 8);
        assert_eq!(uncovered_weight(&L2, &p, &centers, 1000.0), 0);
    }

    #[test]
    #[should_panic(expected = "no centers")]
    fn empty_centers_with_weight_panics() {
        let p = pts();
        let _ = cost_with_outliers(&L2, &p, &[], 0);
    }
}
