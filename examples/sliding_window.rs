//! Sliding-window monitoring: cluster a drifting stream over the most
//! recent `W` arrivals only, with the de Berg–Monemizadeh–Zhong-style
//! structure whose `O((kz/ε^d)·log σ)` space Theorem 30 of the paper
//! proves optimal.
//!
//! The stream's two clusters drift over time, so the optimal centers of
//! the *window* move; expired points must not influence the answer.
//!
//! Run with: `cargo run --release --example sliding_window`

use kcenter_outliers::prelude::*;

fn main() {
    // The structure pays off when the window is much larger than
    // kz/ε^d·log σ: cap = k(16/ε)^d + z = 514 clusters per guess here,
    // against a 25k-point window.
    let (k, z, eps) = (2usize, 2u64, 1.0f64);
    let window = 25_000u64;
    let n = 100_000usize;

    let stream = drifting_stream(n, k, 1.0, 0.05, 0.0001, 31);
    let mut alg = SlidingWindowCoreset::new(L2, k, z, eps, window, 2.0, 2048.0);
    println!(
        "window W = {window}, {} radius guesses, cluster cap per guess = {}\n",
        alg.num_guesses(),
        streaming_capacity(k, z, eps, 2)
    );

    println!(
        "{:>7} {:>8} {:>7} {:>9} {:>10} {:>10} {:>9}",
        "arrival", "|core|", "ρ", "radius", "exact", "stored", "space[w]"
    );
    for (t, p) in stream.iter().enumerate() {
        alg.insert(*p);
        if (t + 1) % 12_500 == 0 {
            let q = alg.query().expect("window non-empty");
            let sol = greedy(&L2, &q.coreset, k, z);
            // From-scratch reference on the exact window (what the
            // structure avoids storing).
            let lo = (t + 1).saturating_sub(window as usize);
            let win = unit_weighted(&stream[lo..=t]);
            let exact = greedy(&L2, &win, k, z);
            println!(
                "{:>7} {:>8} {:>7.2} {:>9.2} {:>10.2} {:>10} {:>9}",
                t + 1,
                q.coreset.len(),
                q.rho,
                sol.radius,
                exact.radius,
                alg.stored_points(),
                alg.space_words()
            );
        }
    }
    println!(
        "\npeak space {} words; evictions (cap overflows): {}",
        alg.peak_words(),
        alg.evictions()
    );
    println!(
        "a from-scratch window solver would store {} points = {} words",
        window,
        window * 2
    );
}
