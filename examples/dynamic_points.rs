//! Fully dynamic streaming (Algorithm 5): a fleet of vehicles reporting
//! integer grid positions in `[Δ]²`, with vehicles joining (insert) and
//! leaving (delete).  The sketch maintains a relaxed (ε,k,z)-coreset
//! through arbitrary churn in `O((k/ε^d + z)·log⁴(kΔ/εδ))` space —
//! without ever storing the live set.
//!
//! Run with: `cargo run --release --example dynamic_points`

use kcenter_outliers::prelude::*;
use kcenter_outliers::streaming::dynamic::paper_sparsity;
use std::collections::HashSet;

fn main() {
    let side_bits = 14; // Δ = 16384
    let (k, z, eps) = (3usize, 8u64, 1.0f64);
    let s = paper_sparsity(k, z, eps, 2);
    println!(
        "universe [0, {})², sparsity target s = k(4√d/ε)^d + z = {s}",
        1u64 << side_bits
    );

    let mut sketch = DynamicCoreset::<2>::for_params(side_bits, k, z, eps, 0.01, 42);
    println!(
        "sketch footprint: {} words ({} grid levels)\n",
        sketch.space_words(),
        side_bits + 1
    );

    // Base fleet: 3 depots plus a few strays; then churn.
    let base = grid_clusters::<2>(side_bits, k, 60, 40, z as usize, 5);
    let ops = churn_schedule(&base, 400, 9);
    let mut live: HashSet<[u64; 2]> = HashSet::new();

    println!(
        "{:>6} {:>6} {:>7} {:>7} {:>9} {:>8}",
        "op#", "live", "|core|", "level", "radius", "exact"
    );
    for (t, op) in ops.iter().enumerate() {
        if op.insert {
            sketch.insert(&op.point);
            live.insert(op.point);
        } else {
            sketch.delete(&op.point);
            live.remove(&op.point);
        }
        if (t + 1) % 150 == 0 || t + 1 == ops.len() {
            let (coreset, level) = sketch.coreset().expect("sketch recovery");
            let sol = greedy(&L2, &coreset, k, z);
            // Ground truth on the live set (this is what the sketch avoids
            // storing; we keep it here only to show the answer is right).
            let live_pts: Vec<[f64; 2]> = live.iter().map(|p| [p[0] as f64, p[1] as f64]).collect();
            let exact = greedy(&L2, &unit_weighted(&live_pts), k, z);
            println!(
                "{:>6} {:>6} {:>7} {:>7} {:>9.1} {:>8.1}",
                t + 1,
                live.len(),
                coreset.len(),
                level,
                sol.radius,
                exact.radius
            );
        }
    }
    println!(
        "\nsketch size: {} words — fixed, independent of the live count ({} points here);",
        sketch.space_words(),
        live.len()
    );
    println!("it beats storing the points once the live set outgrows the sketch, and it");
    println!("supports deletions that an insertion-only structure cannot handle at all.");
}
