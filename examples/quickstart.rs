//! Quickstart: build an (ε,k,z)-coreset of a clustered data set with
//! planted outliers, solve k-center-with-outliers on the coreset, and
//! compare against solving on the full input.
//!
//! Run with: `cargo run --release --example quickstart`

use kcenter_outliers::prelude::*;

fn main() {
    let (k, z, eps) = (4usize, 15u64, 0.5f64);

    // 4 Gaussian clusters of 500 points each + 15 scattered outliers.
    let inst = gaussian_clusters::<2>(k, 500, 1.0, z as usize, 7);
    let weighted = unit_weighted(&inst.points);
    println!(
        "input: {} points ({} cluster points, {} outliers), planted radius {:.2}",
        inst.points.len(),
        inst.n_cluster_points,
        inst.n_outliers,
        inst.planted_radius
    );

    // Algorithm 1: MBCConstruction — the paper's offline coreset.
    let t0 = std::time::Instant::now();
    let mbc = mbc_construction(&L2, &weighted, k, z, eps);
    println!(
        "coreset: {} representatives ({}x compression) in {:.1?} — bound k(12/ε)^d + z = {}",
        mbc.len(),
        inst.points.len() / mbc.len().max(1),
        t0.elapsed(),
        kcenter_outliers::coreset::mbc_size_bound(k, z, eps, 2),
    );
    assert_eq!(total_weight(&mbc.reps), inst.points.len() as u64);

    // Solve on the coreset vs. on the full input (3-approx greedy).
    let t1 = std::time::Instant::now();
    let small = greedy(&L2, &mbc.reps, k, z);
    let t_small = t1.elapsed();
    let t2 = std::time::Instant::now();
    let full = greedy(&L2, &weighted, k, z);
    let t_full = t2.elapsed();

    println!(
        "radius on coreset: {:.3} (in {t_small:.1?}), radius on input: {:.3} (in {t_full:.1?})",
        small.radius, full.radius
    );
    println!(
        "ratio {:.3} — the coreset answer is a (1±ε)-proxy (ε = {eps}), at a fraction of the cost",
        small.radius / full.radius
    );

    // The covering property (Definition 2): every input point is within
    // ε·opt of its representative.
    let cr = covering_radius(&L2, &weighted, &mbc.reps).expect("non-empty coreset");
    println!(
        "covering radius {:.3} ≤ ε·greedy radius / 3 = {:.3}",
        cr,
        eps * mbc.greedy_radius / 3.0
    );
}
