//! Insertion-only streaming: monitoring a stream of sensor readings with
//! occasional anomalies (the outliers), in the optimal `O(k/ε^d + z)`
//! space of Algorithm 3.
//!
//! The stream mixes readings from 3 operating modes (clusters) with rare
//! anomalous readings.  The structure maintains an (ε,k,z)-coreset at all
//! times; every 10k readings we solve k-center-with-outliers on the
//! coreset to locate the modes and count anomaly candidates, and we
//! compare the structure's space against the baselines of Table 1.
//!
//! Run with: `cargo run --release --example sensor_stream`

use kcenter_outliers::prelude::*;

fn main() {
    let (k, z, eps) = (3usize, 30u64, 0.5f64);
    let n = 50_000usize;

    // Sensor readings: 3 modes around (20,40), (60,10), (90,80), noise σ=2,
    // anomaly rate ~ z/n.
    let stream = make_stream(n, z as usize);

    let mut alg = InsertionOnlyCoreset::new(L2, k, z, eps);
    let mut mk = mk_doubling(L2, k, z); // McCutchen–Khuller-style baseline
    let mut cpp = ceccarello_stream(L2, k, z, eps); // CPP19-style baseline

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "readings", "ours[w]", "MK[w]", "CPP19[w]", "radius", "rebuilds"
    );
    for (t, p) in stream.iter().enumerate() {
        alg.insert(*p);
        mk.insert(*p);
        cpp.insert(*p);
        if (t + 1) % 10_000 == 0 {
            let sol = greedy(&L2, alg.coreset(), k, z);
            println!(
                "{:>8} {:>10} {:>12} {:>12} {:>9.3} {:>9}",
                t + 1,
                alg.space_words(),
                mk.space_words(),
                cpp.space_words(),
                sol.radius,
                alg.rebuilds()
            );
        }
    }

    // Final report: modes found and anomaly candidates.
    let sol = greedy(&L2, alg.coreset(), k, z);
    let anomalies: u64 = alg
        .coreset()
        .iter()
        .filter(|w| {
            sol.centers
                .iter()
                .all(|c| L2.dist(&w.point, c) > sol.radius)
        })
        .map(|w| w.weight)
        .sum();
    println!("\nfinal modes (centers): {:?}", sol.centers);
    println!(
        "mode radius {:.2}; {} of {} readings flagged as anomaly candidates (budget z = {z})",
        sol.radius,
        anomalies,
        alg.points_seen()
    );
    println!(
        "peak space: ours {} words vs MK {} vs CPP19 {} (capacity bound k(16/ε)^d + z = {})",
        alg.peak_words(),
        mk.peak_words(),
        cpp.peak_words(),
        streaming_capacity(k, z, eps, 2)
    );
}

fn make_stream(n: usize, z: usize) -> Vec<[f64; 2]> {
    let modes = [[20.0, 40.0], [60.0, 10.0], [90.0, 80.0]];
    let mut s = 0x5EED5EEDu64;
    let mut unit = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut out = Vec::with_capacity(n);
    let anomaly_every = n / z.max(1);
    for t in 0..n {
        if t % anomaly_every == anomaly_every - 1 {
            // Anomaly: far outside every mode.
            out.push([500.0 + unit() * 4000.0, -300.0 - unit() * 4000.0]);
        } else {
            let m = modes[t % 3];
            // Box–Muller noise, σ = 2.
            let g0 =
                (-2.0 * unit().max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * unit()).cos();
            let g1 =
                (-2.0 * unit().max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * unit()).sin();
            out.push([m[0] + 2.0 * g0, m[1] + 2.0 * g1]);
        }
    }
    out
}
