//! MPC simulation: the same adversarially-distributed data set processed
//! by all four MPC algorithms (2-round, randomized 1-round, R-round, and
//! the Ceccarello-et-al.-style baseline), with the paper's resource
//! metrics printed side by side.
//!
//! All planted outliers are dumped on a single machine — the adversarial
//! distribution Algorithm 2 is designed to survive and Algorithm 6 is not.
//!
//! Run with: `cargo run --release --example mpc_cluster`

use kcenter_outliers::kcenter::charikar::GreedyParams;
use kcenter_outliers::prelude::*;

fn main() {
    let (k, z, eps) = (3usize, 24u64, 0.5f64);
    let m = 8; // machines

    let inst = gaussian_clusters::<2>(k, 400, 1.0, z as usize, 11);
    let weighted = unit_weighted(&inst.points);
    println!(
        "input: {} points over {m} machines; all {} outliers on machine 0\n",
        inst.points.len(),
        z
    );
    let adversarial = concentrated_partition(&inst.points, &inst.outlier_flags, m);
    let random = random_partition(&inst.points, m, 99);
    let params = GreedyParams::default();

    let full = greedy(&L2, &weighted, k, z);
    println!(
        "offline greedy on the full input: radius {:.3}\n",
        full.radius
    );

    let mut rows: Vec<(String, MpcRunStats, f64)> = Vec::new();

    let two = two_round(&L2, &adversarial, k, z, eps, &params);
    rows.push((
        "2-round (Alg 2, adversarial)".into(),
        two.output.stats.clone(),
        solve(&two.output.coreset, k, z),
    ));

    let one = one_round_randomized(&L2, &random, k, z, eps, &params);
    rows.push((
        "1-round (Alg 6, random)".into(),
        one.output.stats.clone(),
        solve(&one.output.coreset, k, z),
    ));

    for rounds in [2usize, 3] {
        let rr = r_round(&L2, &adversarial, k, z, eps, rounds, &params);
        rows.push((
            format!("{rounds}-round tree (Alg 7, adversarial)"),
            rr.stats.clone(),
            solve(&rr.coreset, k, z),
        ));
    }

    let base = ceccarello_one_round(&L2, &adversarial, k, z, eps, &params);
    rows.push((
        "CPP19 baseline (adversarial)".into(),
        base.stats.clone(),
        solve(&base.coreset, k, z),
    ));

    println!(
        "{:<36} {:>7} {:>12} {:>12} {:>10} {:>9} {:>8}",
        "algorithm", "rounds", "worker[w]", "coord[w]", "comm[w]", "|coreset|", "radius"
    );
    for (name, s, radius) in &rows {
        println!(
            "{:<36} {:>7} {:>12} {:>12} {:>10} {:>9} {:>8.3}",
            name,
            s.rounds,
            s.worker_peak_words,
            s.coordinator_peak_words,
            s.comm_words,
            s.coreset_size,
            radius
        );
    }
    println!(
        "\n2-round diagnostics: r̂ = {:.3}, per-machine outlier budgets = {:?} (Σ ≤ 2z = {})",
        two.rhat,
        two.budgets,
        2 * z
    );
}

fn solve(coreset: &[Weighted<[f64; 2]>], k: usize, z: u64) -> f64 {
    greedy(&L2, coreset, k, z).radius
}
