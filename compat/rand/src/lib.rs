//! Minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing exactly the 0.9-era API subset this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `random_range` / `random_bool`.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched; this crate keeps every generator in the workspace deterministic
//! and self-contained.  `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — a different stream than the real `StdRng` (ChaCha12), which
//! is fine because nothing in the workspace depends on the exact stream,
//! only on determinism-given-seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p = {p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` via Lemire's multiply-shift reduction.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against round-up to `end` when the span is huge.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let x = (self.start as f64..self.end as f64).sample_single(rng) as f32;
        // The f64→f32 cast rounds to nearest and can land exactly on `end`.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
