//! Test-runner types: configuration, case errors, and the deterministic RNG.

use rand::rngs::StdRng;
use rand::SeedableRng as _;
use std::fmt;

/// Mirror of `proptest::test_runner::Config` (re-exported from the prelude
/// as `ProptestConfig`).  Construct with functional-record-update syntax:
///
/// ```
/// use proptest::prelude::*;
/// let cfg = ProptestConfig { cases: 24, ..ProptestConfig::default() };
/// assert_eq!(cfg.cases, 24);
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases each test function runs.
    pub cases: u32,
    /// Base seed for the per-test RNG stream.  Combined with the test
    /// function's name, so distinct tests see distinct streams while every
    /// run of the same test sees the same one.
    ///
    /// This field is specific to the stand-in (the real crate seeds from
    /// entropy and persists failures in `proptest-regressions/` instead);
    /// uses of it must be dropped when swapping the real crate back in.
    pub rng_seed: u64,
    /// Accepted for source compatibility with the real crate; this
    /// stand-in does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            rng_seed: 0x5EED,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert!`-family macro tripped.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Result type each generated case evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG feeding the strategies; the generator itself is the
/// sibling `rand` stand-in's `StdRng` (mirroring how the real proptest
/// builds on the real rand).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one named test: `base_seed` mixed with an FNV-1a hash of the
    /// test name, so distinct tests see distinct deterministic streams.
    pub fn deterministic(base_seed: u64, test_name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(base_seed ^ h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Uniform `u64` below `span` (> 0).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Lets the range strategies delegate straight to the `rand` stand-in's
/// samplers instead of duplicating them.
impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}
