//! Minimal, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, covering the API
//! subset this workspace's property tests use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `prop::collection::vec`, `Strategy::prop_map`, and `ProptestConfig`.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic by default.**  Every test function derives its RNG
//!   stream from `ProptestConfig::rng_seed` (default `0x5EED`) combined
//!   with the test's name, so CI never flakes and failures reproduce
//!   exactly.  The real proptest seeds from entropy unless told otherwise.
//! * **No shrinking.**  On failure the offending case index and message are
//!   reported; rerunning is deterministic, so the case is recoverable.
//!
//! The build container has no network access; this crate exists so the
//! seed's 1,100+ lines of property tests run at all.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the real prelude's `prop` module path
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// The `proptest! { ... }` macro: expands each `fn name(arg in strategy, ..)`
/// item into a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_parens)]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                config.rng_seed,
                stringify!($name),
            );
            for case in 0..config.cases {
                let ($($arg),+) = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut rng)
                ),+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fail the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current proptest case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}
