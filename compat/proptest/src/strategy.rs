//! The [`Strategy`] trait and the range / tuple / map strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, generation is direct (no intermediate value
/// trees) and there is no shrinking; determinism comes from the seeded
/// [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (mirror of
    /// `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Range strategies delegate to the `rand` stand-in's samplers (TestRng
// implements `rand::RngCore`), so sampling behavior — bounds handling
// included — has exactly one implementation in the workspace.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_single(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_single(self.clone(), rng)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rand::SampleRange::sample_single(self.clone(), rng)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rand::SampleRange::sample_single(self.clone(), rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
}
