//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec`]: an exact `usize`, a half-open
/// `Range<usize>`, or an inclusive `RangeInclusive<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn uniformly from `size`
/// (mirror of `proptest::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
