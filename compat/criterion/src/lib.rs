//! Minimal, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! exposing the API subset this workspace's benches use: `Criterion`,
//! `benchmark_group` (with `sample_size` / `throughput` /
//! `bench_with_input` / `bench_function` / `finish`), `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched.  This harness actually runs each closure (a short warm-up, then
//! a fixed number of timed passes) and prints median wall time plus
//! throughput where declared — enough for honest relative comparisons,
//! without criterion's statistics, plots, or CLI.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: 10,
            throughput: None,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.render(), 10, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed passes per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declare elements/bytes processed per pass, for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.samples, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.samples, self.throughput, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { nanos: Vec::new() };
    // One warm-up pass, then the timed passes.
    for _ in 0..=samples {
        f(&mut b);
    }
    b.nanos.remove(0);
    b.nanos.sort_unstable();
    let median = b.nanos.get(b.nanos.len() / 2).copied().unwrap_or(0);
    match throughput {
        Some(Throughput::Elements(n)) if median > 0 => println!(
            "{label}: median {median} ns ({:.3} Melem/s)",
            n as f64 / median as f64 * 1e3
        ),
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if median > 0 => println!(
            "{label}: median {median} ns ({:.3} MB/s)",
            n as f64 / median as f64 * 1e3
        ),
        _ => println!("{label}: median {median} ns"),
    }
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Time one pass of `routine` (criterion batches many iterations per
    /// sample; this stand-in times single passes, which is adequate for the
    /// millisecond-scale routines benched here).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.nanos.push(start.elapsed().as_nanos());
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Units of work per pass, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per pass.
    Elements(u64),
    /// Bytes processed per pass (binary units).
    Bytes(u64),
    /// Bytes processed per pass (decimal units).
    BytesDecimal(u64),
}

/// Define a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the `main` function of a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
